"""Run-store subsystem tests: content addressing, versioned payloads,
bitwise checkpoint/resume across the trainer, the SA baselines and the
experiment scheduler.

Covers the PR-5 tentpole guarantees:

* ``store_key`` stability and sensitivity; ``RunStore`` result and
  checkpoint slots (atomic publish, hit/miss accounting);
* the versioned payload schema — arrays, JSON scalars, RNG generator
  states and pickled objects round-trip bitwise; legacy weight-only
  archives are rejected loudly instead of resuming with reset state;
* the SHA-256 integrity footer (schema v3): truncated or bit-flipped
  payload bytes/files fail loudly as ``PayloadIntegrityError`` — a
  transient ``OSError`` to the fault layer, a schema error to the
  store's quarantine path — while footer-less legacy bytes keep their
  specific diagnostics (PR-9 satellite);
* RNG state round-trip for every ``SeedSequence``-derived stream
  (satellite): a restored ``bit_generator.state`` replays the exact
  draw sequence;
* trainer kill-at-epoch-k + resume == uninterrupted run, bitwise, for
  the sequential (``batch_size=1``) and batched engines, with and
  without RND;
* SA kill-mid-anneal + resume == uninterrupted run, bitwise, for the
  sequential and lockstep multi-chain engines through both
  ``TAP25DPlacer`` and ``BStarFloorplanner``;
* scheduler store integration — keyed jobs skip on published results
  (zero executions on a completed sweep), fresh results publish, and
  dependents' ``inject`` hooks read cached dependency results;
* a ``--resume``'d sweep reproduces the sequential goldens exactly
  and re-executes zero method-arm jobs; an in-flight arm restarts
  from its store checkpoint;
* ablations sharded through the scheduler: ``jobs=2`` bitwise equal to
  ``jobs=1`` (satellite);
* ``resolve_jobs`` — the ``--jobs auto`` mode (satellite).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from golden_experiments_utils import (
    GOLDEN_EXPERIMENTS_PATH,
    build_golden_budget,
    build_golden_spec,
    run_golden_experiments,
)
from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.baselines import TAP25DConfig, TAP25DPlacer
from repro.baselines.bstar import BStarConfig, BStarFloorplanner
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.ablations import run_ablations
from repro.experiments.runner import (
    ExperimentBudget,
    arm_store_key,
    build_evaluators,
    run_method_arm,
)
from repro.nn import (
    LegacyCheckpointError,
    PayloadIntegrityError,
    dumps_payload,
    load_payload,
    loads_payload,
    save_payload,
    save_state_dict,
)
from repro.parallel import JobSpec, RetryPolicy, resolve_jobs, run_jobs
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import PPOConfig, RNDConfig
from repro.store import RunStore, store_key
from repro.utils import SeedSequence


class _Interrupted(Exception):
    """Raised by checkpoint hooks to emulate a mid-run kill."""


def _hex(value) -> str:
    return float(value).hex()


def _history_hex(result):
    """Bitwise-comparable trainer history (wall-clock fields excluded)."""
    return [
        {
            key: (_hex(v) if isinstance(v, float) else v)
            for key, v in entry.items()
            if key != "elapsed"
        }
        for entry in result.history
    ]


# ----------------------------------------------------------------------
# store keys + slots
# ----------------------------------------------------------------------


class TestStoreKey:
    def test_stable_and_order_insensitive(self):
        a = store_key("kind", {"x": 1, "y": (2.0, "s"), "z": None})
        b = store_key("kind", {"z": None, "y": [2.0, "s"], "x": 1})
        assert a == b
        assert len(a) == 64

    def test_sensitive_to_payload_kind_and_floats(self):
        base = store_key("kind", {"x": 1.0})
        assert store_key("kind", {"x": 1.0 + 1e-15}) != base
        assert store_key("kind2", {"x": 1.0}) != base
        assert store_key("kind", {"x": 1}) != base  # int vs float

    def test_dataclasses_canonicalize(self):
        b1 = ExperimentBudget(seed=1)
        b2 = ExperimentBudget(seed=1)
        assert store_key("k", {"b": b1}) == store_key("k", {"b": b2})
        assert store_key("k", {"b": ExperimentBudget(seed=2)}) != store_key(
            "k", {"b": b1}
        )

    def test_rejects_unhashable_payloads(self):
        with pytest.raises(TypeError):
            store_key("k", {"x": object()})


class TestRunStore:
    def test_result_roundtrip_and_accounting(self, tmp_path):
        store = RunStore(tmp_path)
        key = store_key("t", {"i": 1})
        assert not store.contains(key)
        hit, _ = store.fetch(key)
        assert not hit and store.misses == 1
        store.put(key, {"value": 42})
        assert store.contains(key)
        hit, value = store.fetch(key)
        assert hit and value == {"value": 42}
        assert store.hits == 1

    def test_stored_none_is_a_hit(self, tmp_path):
        store = RunStore(tmp_path)
        key = store_key("t", {"i": 2})
        store.put(key, None)
        hit, value = store.fetch(key)
        assert hit and value is None

    def test_checkpoint_slot(self, tmp_path):
        store = RunStore(tmp_path)
        key = store_key("t", {"i": 3})
        assert store.load_checkpoint(key) is None
        store.save_checkpoint(key, {"iteration": 7})
        store.save_checkpoint(key, {"iteration": 9})  # overwrite
        assert store.load_checkpoint(key)["iteration"] == 9
        store.clear_checkpoint(key)
        assert store.load_checkpoint(key) is None
        store.clear_checkpoint(key)  # idempotent

    def test_no_partial_artifacts(self, tmp_path):
        store = RunStore(tmp_path)
        key = store_key("t", {"i": 4})
        store.put(key, np.arange(1000))
        # The only file under results/ is the complete artifact; the
        # atomic_replace temp name never survives.
        files = list((tmp_path / "results").rglob("*.pkl"))
        assert files == [store.result_path(key)]

    def test_corrupt_result_is_quarantined_as_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        key = store_key("t", {"i": 5})
        store.put(key, {"value": 1})
        # Torn write / bit rot: the payload is valid pickle's first
        # half.  fetch must not raise — it quarantines and reports a
        # miss so the unit simply re-runs.
        path = store.result_path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        hit, value = store.fetch(key)
        assert not hit and value is None
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()
        # The slot is writable again and behaves normally afterwards.
        store.put(key, {"value": 2})
        assert store.get(key) == {"value": 2}

    def test_garbage_result_bytes_are_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        key = store_key("t", {"i": 6})
        path = store.result_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle at all")
        assert store.get(key, default="fallback") == "fallback"
        assert path.with_name(path.name + ".corrupt").exists()

    def test_corrupt_checkpoint_is_quarantined_as_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        key = store_key("t", {"i": 7})
        store.save_checkpoint(key, {"iteration": 7})
        path = store.checkpoint_path(key)
        path.write_bytes(path.read_bytes()[:10])
        assert store.load_checkpoint(key, default="restart") == "restart"
        assert path.with_name(path.name + ".corrupt").exists()
        # A fresh checkpoint overwrites cleanly.
        store.save_checkpoint(key, {"iteration": 8})
        assert store.load_checkpoint(key)["iteration"] == 8


# ----------------------------------------------------------------------
# versioned payload schema
# ----------------------------------------------------------------------


class TestPayloadSchema:
    def test_roundtrip_bitwise(self, tmp_path):
        rng = np.random.default_rng(3)
        payload = {
            "arrays": {"w": rng.normal(size=(3, 4)), "i": np.arange(5)},
            "scalars": [1, -2.5, float("inf"), True, None, "text"],
            "big": 2**130 + 7,  # PCG64-state-sized integer
            "rng_state": rng.bit_generator.state,
            "np_scalar": np.float64(0.1),
            "obj": {"tuple": (1, 2), "nested": [{"x": 0.25}]},
        }
        path = tmp_path / "payload.npz"
        save_payload(payload, path, kind="test")
        loaded = load_payload(path, kind="test")
        assert (loaded["arrays"]["w"] == payload["arrays"]["w"]).all()
        assert loaded["arrays"]["w"].dtype == payload["arrays"]["w"].dtype
        assert loaded["scalars"] == payload["scalars"]
        assert loaded["big"] == payload["big"]
        assert loaded["rng_state"] == payload["rng_state"]
        assert loaded["np_scalar"] == payload["np_scalar"]
        assert type(loaded["np_scalar"]) is np.float64
        assert loaded["obj"]["tuple"] == (1, 2)
        assert isinstance(loaded["obj"]["tuple"], tuple)

    def test_legacy_archive_rejected(self, tmp_path):
        path = tmp_path / "legacy.npz"
        save_state_dict({"w": np.zeros(3)}, path)
        with pytest.raises(LegacyCheckpointError, match="legacy weight-only"):
            load_payload(path)

    def test_kind_mismatch_rejected(self, tmp_path):
        path = tmp_path / "p.npz"
        save_payload({"x": 1}, path, kind="sa-engine")
        with pytest.raises(Exception, match="kind"):
            load_payload(path, kind="rlplanner-trainer")


class TestPayloadIntegrity:
    """Satellite: the SHA-256 footer sealed onto every payload (schema
    v3) makes corruption in transit or on disk fail loudly — and
    *transiently*, so the fault layer re-broadcasts / re-reads instead
    of quarantining a healthy source."""

    def _payload(self):
        return {"w": np.arange(12, dtype=np.float64), "step": 7}

    def test_bytes_roundtrip_and_match_the_file_form(self, tmp_path):
        data = dumps_payload(self._payload(), kind="test")
        loaded = loads_payload(data, kind="test")
        assert (loaded["w"] == self._payload()["w"]).all()
        assert loaded["step"] == 7
        path = tmp_path / "p.npz"
        save_payload(self._payload(), path, kind="test")
        assert path.read_bytes() == data

    def test_bit_flip_fails_the_footer(self):
        data = bytearray(dumps_payload(self._payload(), kind="test"))
        data[len(data) // 2] ^= 0x01
        with pytest.raises(PayloadIntegrityError, match="SHA-256"):
            loads_payload(bytes(data), kind="test")

    def test_bit_flipped_file_fails_on_load(self, tmp_path):
        path = tmp_path / "p.npz"
        save_payload(self._payload(), path, kind="test")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(PayloadIntegrityError, match="SHA-256"):
            load_payload(path, kind="test")

    @pytest.mark.parametrize("keep", [10, 0.5])
    def test_truncation_fails_even_without_the_footer(self, keep):
        # A truncation that also destroys the footer magic falls through
        # _unseal, then fails as an unreadable archive — still the same
        # loud, transient error class, never a raw zip traceback.
        data = dumps_payload(self._payload(), kind="test")
        cut = keep if isinstance(keep, int) else int(len(data) * keep)
        with pytest.raises(PayloadIntegrityError):
            loads_payload(data[:cut], kind="test")

    def test_footer_stripped_bytes_still_load(self):
        # Pre-v3 payloads had no footer; _unseal tolerates their absence
        # so the schema-version check downstream stays the error a user
        # sees for genuinely old checkpoints (not "corrupted").
        data = dumps_payload(self._payload(), kind="test")
        stripped = data[:-40]  # 8-byte magic + 32-byte digest
        loaded = loads_payload(stripped, kind="test")
        assert loaded["step"] == 7

    def test_integrity_error_is_transient_and_schema_classified(self):
        error = PayloadIntegrityError("corrupt")
        assert isinstance(error, OSError)
        assert RetryPolicy.is_transient(error)
        # ...and the store's quarantine path still catches it:
        from repro.nn.serialization import CheckpointSchemaError

        assert isinstance(error, CheckpointSchemaError)

    def test_legacy_state_dict_error_is_unchanged(self, tmp_path):
        # The footer must not swallow the actionable legacy diagnosis.
        path = tmp_path / "legacy.npz"
        save_state_dict({"w": np.zeros(3)}, path)
        with pytest.raises(LegacyCheckpointError, match="legacy weight-only"):
            load_payload(path)


class TestRNGStateRoundTrip:
    """Satellite: every SeedSequence-derived stream restores bitwise."""

    STREAMS = ("network", "rnd", "actions", "ppo", "episode.0", "episode.7")

    def test_streams_replay_identical_draws(self, tmp_path):
        seeds = SeedSequence(42)
        for stream in self.STREAMS:
            rng = seeds.rng(stream)
            rng.random(17)  # advance into mid-stream state
            path = tmp_path / "state.npz"
            save_payload({"state": rng.bit_generator.state}, path, kind="rng")
            expected = rng.random(64)
            expected_ints = rng.integers(0, 1 << 30, size=8)

            restored = seeds.rng(stream)  # fresh generator, then restore
            restored.bit_generator.state = load_payload(path, kind="rng")[
                "state"
            ]
            assert restored.random(64).tobytes() == expected.tobytes(), stream
            assert (
                restored.integers(0, 1 << 30, size=8) == expected_ints
            ).all(), stream

    def test_streams_are_distinct(self):
        seeds = SeedSequence(42)
        states = {
            stream: seeds.rng(stream).bit_generator.state["state"]["state"]
            for stream in self.STREAMS
        }
        assert len(set(states.values())) == len(self.STREAMS)


# ----------------------------------------------------------------------
# trainer kill + resume
# ----------------------------------------------------------------------


@pytest.fixture
def trainer_env(small_system, small_fast_model):
    calc = RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )
    return FloorplanEnv(small_system, calc, EnvConfig(grid_size=10))


def _make_trainer(env, **overrides):
    defaults = dict(
        epochs=4,
        episodes_per_epoch=2,
        seed=3,
        log_every=0,
        encoder_channels=(4, 8, 8),
        ppo=PPOConfig(minibatch_size=8, update_epochs=2),
        rnd=RNDConfig(bonus_scale=0.5),
    )
    defaults.update(overrides)
    return RLPlannerTrainer(env, TrainerConfig(**defaults))


class TestTrainerResume:
    @pytest.mark.parametrize(
        "engine_kwargs",
        [
            dict(batch_size=1),
            dict(batch_size=3),
            dict(batch_size=3, use_rnd=True),
        ],
        ids=["sequential", "batched", "batched-rnd"],
    )
    def test_kill_and_resume_bitwise(self, trainer_env, tmp_path, engine_kwargs):
        reference = _make_trainer(trainer_env, **engine_kwargs).train()

        path = tmp_path / "ckpt.npz"
        interrupted = _make_trainer(
            trainer_env, checkpoint_every=2, **engine_kwargs
        )

        def kill_at_checkpoint(state):
            interrupted.save_checkpoint(path)
            raise _Interrupted()

        with pytest.raises(_Interrupted):
            interrupted.train(checkpoint_fn=kill_at_checkpoint)

        resumed = _make_trainer(
            trainer_env, checkpoint_every=2, **engine_kwargs
        )
        resumed.load_checkpoint(path)
        assert resumed._progress["epochs_run"] == 2
        result = resumed.train()

        assert result.epochs_run == reference.epochs_run
        assert _hex(result.best_reward) == _hex(reference.best_reward)
        assert _history_hex(result) == _history_hex(reference)
        for key, ref in reference.best_placement.positions.items():
            assert result.best_placement.positions[key] == ref

    def test_final_weights_bitwise(self, trainer_env, tmp_path):
        reference = _make_trainer(trainer_env, batch_size=1)
        reference.train()
        path = tmp_path / "ckpt.npz"
        interrupted = _make_trainer(trainer_env, batch_size=1, checkpoint_every=1)

        calls = {"n": 0}

        def kill_at_third(state):
            calls["n"] += 1
            if calls["n"] == 3:
                interrupted.save_checkpoint(path)
                raise _Interrupted()

        with pytest.raises(_Interrupted):
            interrupted.train(checkpoint_fn=kill_at_third)
        resumed = _make_trainer(trainer_env, batch_size=1, checkpoint_every=1)
        resumed.load_checkpoint(path)
        resumed.train()
        for name, ref in reference.network.state_dict().items():
            got = resumed.network.state_dict()[name]
            assert got.tobytes() == ref.tobytes(), name
        ref_opt = reference.optimizer.state_dict()
        got_opt = resumed.optimizer.state_dict()
        assert got_opt["t"] == ref_opt["t"]
        for ref_m, got_m in zip(ref_opt["m"], got_opt["m"]):
            assert got_m.tobytes() == ref_m.tobytes()
        # RNG streams end in the same state (the next run of anything
        # downstream is also identical).
        assert (
            resumed._act_rng.bit_generator.state
            == reference._act_rng.bit_generator.state
        )
        assert (
            resumed._ppo_rng.bit_generator.state
            == reference._ppo_rng.bit_generator.state
        )

    def test_checkpoint_states_are_not_aliased(self, trainer_env):
        """An in-memory checkpoint taken at epoch k must not grow as
        training continues (the history list is snapshotted, not
        aliased to the live progress)."""
        trainer = _make_trainer(trainer_env, checkpoint_every=2)
        states = []
        trainer.train(checkpoint_fn=states.append)
        assert len(states) == 1  # epochs=4, cadence 2, final epoch skipped
        assert len(states[0]["progress"]["history"]) == 2
        assert len(trainer._progress["history"]) == 4

    def test_legacy_weight_only_checkpoint_rejected(
        self, trainer_env, tmp_path
    ):
        trainer = _make_trainer(trainer_env)
        path = tmp_path / "weights.npz"
        save_state_dict(trainer.network.state_dict(), path)  # legacy format
        with pytest.raises(LegacyCheckpointError, match="legacy weight-only"):
            _make_trainer(trainer_env).load_checkpoint(path)


# ----------------------------------------------------------------------
# SA kill + resume
# ----------------------------------------------------------------------


@pytest.fixture
def sa_calculator(small_fast_model):
    return RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )


def _run_killed_then_resumed(make_placer, reference):
    captured = {}

    def kill_at_checkpoint(snapshot):
        captured["snapshot"] = snapshot
        raise _Interrupted()

    with pytest.raises(_Interrupted):
        make_placer().run(checkpoint_fn=kill_at_checkpoint)
    resumed = make_placer().run(resume_state=captured["snapshot"])

    assert _hex(resumed.breakdown.reward) == _hex(reference.breakdown.reward)
    assert resumed.n_evaluations == reference.n_evaluations
    ref_rows = reference.history.state_dict()["rows"]
    got_rows = resumed.history.state_dict()["rows"]
    assert got_rows.tobytes() == ref_rows.tobytes()
    return resumed


class TestSAResume:
    def test_tap25d_sequential(self, small_system, sa_calculator):
        def make(checkpoint_every=20):
            return TAP25DPlacer(
                small_system,
                sa_calculator,
                TAP25DConfig(
                    n_iterations=60, seed=5, checkpoint_every=checkpoint_every
                ),
            )

        reference = TAP25DPlacer(
            small_system, sa_calculator, TAP25DConfig(n_iterations=60, seed=5)
        ).run()
        resumed = _run_killed_then_resumed(make, reference)
        for name in small_system.chiplet_names:
            assert (
                resumed.placement.positions[name]
                == reference.placement.positions[name]
            )

    def test_tap25d_multichain(self, small_system, sa_calculator):
        def make(checkpoint_every=20):
            return TAP25DPlacer(
                small_system,
                sa_calculator,
                TAP25DConfig(
                    n_iterations=60,
                    seed=5,
                    n_chains=3,
                    checkpoint_every=checkpoint_every,
                ),
            )

        reference = TAP25DPlacer(
            small_system,
            sa_calculator,
            TAP25DConfig(n_iterations=60, seed=5, n_chains=3),
        ).run()
        _run_killed_then_resumed(make, reference)

    def test_bstar_sequential(self, small_system, sa_calculator):
        def make(checkpoint_every=15):
            return BStarFloorplanner(
                small_system,
                sa_calculator,
                BStarConfig(
                    n_iterations=40, seed=2, checkpoint_every=checkpoint_every
                ),
            )

        reference = BStarFloorplanner(
            small_system, sa_calculator, BStarConfig(n_iterations=40, seed=2)
        ).run()
        _run_killed_then_resumed(make, reference)

    def test_bstar_multichain(self, small_system, sa_calculator):
        def make(checkpoint_every=15):
            return BStarFloorplanner(
                small_system,
                sa_calculator,
                BStarConfig(
                    n_iterations=40,
                    seed=2,
                    n_chains=3,
                    checkpoint_every=checkpoint_every,
                ),
            )

        reference = BStarFloorplanner(
            small_system,
            sa_calculator,
            BStarConfig(n_iterations=40, seed=2, n_chains=3),
        ).run()
        _run_killed_then_resumed(make, reference)

    def test_engine_mismatch_rejected(self, small_system, sa_calculator):
        captured = {}

        def grab(snapshot):
            captured["snapshot"] = snapshot
            raise _Interrupted()

        with pytest.raises(_Interrupted):
            TAP25DPlacer(
                small_system,
                sa_calculator,
                TAP25DConfig(n_iterations=40, seed=5, checkpoint_every=10),
            ).run(checkpoint_fn=grab)
        with pytest.raises(ValueError, match="sequential"):
            TAP25DPlacer(
                small_system,
                sa_calculator,
                TAP25DConfig(n_iterations=40, seed=5, n_chains=3),
            ).run(resume_state=captured["snapshot"])


# ----------------------------------------------------------------------
# scheduler store integration
# ----------------------------------------------------------------------


def _counting_job(x, counter_path):
    # O_APPEND one-byte writes are atomic: concurrent jobs (the
    # supervised scheduler forks both workers at once) never lose an
    # execution tick the way read-modify-write would.
    with open(counter_path, "a") as handle:
        handle.write("x")
    return x * x


def _executions(counter_path) -> int:
    path = Path(counter_path)
    return len(path.read_text()) if path.exists() else 0


def _offset_job(x, offset=0):
    return x + offset


class TestSchedulerStore:
    def _specs(self, counter_path):
        key_a = store_key("sched-test", {"x": 3})
        key_b = store_key("sched-test", {"x": 4})
        return [
            JobSpec(
                "a",
                _counting_job,
                dict(x=3, counter_path=counter_path),
                store_key=key_a,
            ),
            JobSpec(
                "b",
                _counting_job,
                dict(x=4, counter_path=counter_path),
                store_key=key_b,
            ),
            # Unkeyed dependent: always runs, reads a's (possibly
            # cached) result through inject.
            JobSpec(
                "c",
                _offset_job,
                dict(x=100),
                needs=("a",),
                inject=lambda kwargs, done: {**kwargs, "offset": done["a"]},
            ),
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_completed_jobs_skip_execution(self, tmp_path, jobs):
        counter = tmp_path / "count.txt"
        store = RunStore(tmp_path / "store")
        first = run_jobs(self._specs(counter), jobs=jobs, store=store)
        assert first == {"a": 9, "b": 16, "c": 109}
        assert _executions(counter) == 2
        assert store.misses == 2 and store.hits == 0

        rerun_store = RunStore(tmp_path / "store")
        second = run_jobs(self._specs(counter), jobs=jobs, store=rerun_store)
        assert second == first
        # Zero keyed executions: the counter did not move, both keyed
        # jobs were served from the store, and the unkeyed dependent
        # re-ran against the cached dependency result.
        assert _executions(counter) == 2
        assert rerun_store.hits == 2 and rerun_store.misses == 0

    def test_no_store_is_unchanged(self, tmp_path):
        counter = tmp_path / "count.txt"
        outcome = run_jobs(self._specs(counter), jobs=1)
        assert outcome == {"a": 9, "b": 16, "c": 109}
        outcome = run_jobs(self._specs(counter), jobs=1)
        assert _executions(counter) == 4  # executed again, no store


class TestResolveJobs:
    def test_integers_pass_through(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("2") == 2

    def test_auto_matches_available_cpus(self):
        expected = getattr(os, "process_cpu_count", None)
        if expected is not None:
            expected = expected()
        else:
            try:
                expected = len(os.sched_getaffinity(0))
            except (AttributeError, OSError):
                expected = os.cpu_count()
        assert resolve_jobs("auto") == max(int(expected or 1), 1)
        assert resolve_jobs("AUTO") >= 1

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            resolve_jobs("0")
        with pytest.raises(ValueError):
            resolve_jobs(-2)
        with pytest.raises(ValueError):
            resolve_jobs("many")


# ----------------------------------------------------------------------
# resumable experiment sweeps (golden-pinned)
# ----------------------------------------------------------------------


class TestResumableSweep:
    def test_store_run_matches_golden_and_resume_executes_nothing(
        self, tmp_path
    ):
        """A sweep through the run store reproduces the sequential
        goldens exactly, and re-running it with the warm store executes
        zero method-arm jobs (pure store hits), sequential and pooled.
        """
        golden = json.loads(Path(GOLDEN_EXPERIMENTS_PATH).read_text())
        store = RunStore(tmp_path / "store")
        record = run_golden_experiments(tmp_path / "cache", store=store)
        assert record == golden
        assert store.misses == 4 and store.hits == 0

        rerun = RunStore(tmp_path / "store")
        assert run_golden_experiments(tmp_path / "cache", store=rerun) == golden
        assert rerun.hits == 4 and rerun.misses == 0

        pooled = RunStore(tmp_path / "store")
        assert (
            run_golden_experiments(tmp_path / "cache", store=pooled, jobs=2)
            == golden
        )
        assert pooled.hits == 4 and pooled.misses == 0

    def test_fully_cached_sweep_schedules_no_prewarm(self, tmp_path):
        """When every arm's result is published, the characterization
        prewarm job is dropped and no arm depends on it."""
        from repro.experiments.runner import arm_store_key, method_arm_jobs

        spec = build_golden_spec()
        budget = build_golden_budget()
        store = RunStore(tmp_path / "store")

        cold = method_arm_jobs(spec, budget, store=store)
        assert any("prewarm" in job.job_id for job in cold)

        for job in cold:
            if job.store_key is not None:
                store.put(job.store_key, "stub-result")
        warm = method_arm_jobs(spec, budget, store=store)
        assert not any("prewarm" in job.job_id for job in warm)
        assert all(
            "prewarm" not in dep for job in warm for dep in job.needs
        )
        assert len(warm) == len(cold) - 1

    def test_inflight_arm_resumes_from_store_checkpoint(self, tmp_path):
        """An arm interrupted mid-training restarts from its latest
        store checkpoint and produces the uninterrupted arm's result
        bitwise."""
        spec = build_golden_spec()
        budget = ExperimentBudget(
            **{
                **build_golden_budget().__dict__,
                "rl_checkpoint_every": 1,
            }
        )
        cache = tmp_path / "cache"
        reference = run_method_arm(spec, "RLPlanner", budget, cache_dir=cache)

        # Emulate the kill: run the arm's exact trainer, checkpoint into
        # the arm's store slot after epoch 1, and die there.
        store = RunStore(tmp_path / "store")
        key = arm_store_key(spec, "RLPlanner", budget)
        evaluators = build_evaluators(spec, budget, cache)
        env = FloorplanEnv(
            spec.system,
            evaluators["reward_fast"],
            EnvConfig(grid_size=budget.grid_size),
        )
        trainer = RLPlannerTrainer(
            env,
            TrainerConfig(
                epochs=budget.rl_epochs,
                episodes_per_epoch=budget.episodes_per_epoch,
                batch_size=budget.rollout_batch_size,
                seed=budget.seed,
                use_rnd=False,
                rnd=RNDConfig(bonus_scale=0.5),
                ppo=PPOConfig(),
                log_every=0,
                checkpoint_every=1,
            ),
        )

        def kill(state):
            store.save_checkpoint(key, state)
            raise _Interrupted()

        with pytest.raises(_Interrupted):
            trainer.train(checkpoint_fn=kill)
        assert store.load_checkpoint(key) is not None

        resumed = run_method_arm(
            spec,
            "RLPlanner",
            budget,
            cache_dir=cache,
            store_dir=store.root,
        )
        assert _hex(resumed.reward) == _hex(reference.reward)
        assert _hex(resumed.wirelength) == _hex(reference.wirelength)
        assert _hex(resumed.temperature_c) == _hex(reference.temperature_c)
        # The checkpoint slot is cleared once the arm completes.
        assert store.load_checkpoint(key) is None

    def test_time_limited_arm_runs_checkpoint_free(self, tmp_path):
        """A wall-clock-limited anneal's stopping iteration is not
        reproducible, so the time-matched arm must never checkpoint —
        it stays result-cached only."""
        spec = build_golden_spec()
        budget = ExperimentBudget(
            **{
                **build_golden_budget().__dict__,
                "sa_chains": 2,
                "sa_iterations_hotspot": 4,
                "sa_checkpoint_every": 1,
            }
        )
        store = RunStore(tmp_path / "store")
        result = run_method_arm(
            spec,
            "TAP-2.5D*(FastThermal)",
            budget,
            cache_dir=tmp_path / "cache",
            time_limit=60.0,  # generous: the anneal finishes within it
            time_matched=True,
            store_dir=store.root,
        )
        assert np.isfinite(result.reward)
        assert result.extra["time_matched"] is True
        assert not list(store.root.rglob("*.ckpt.pkl"))
        assert store.contains(
            arm_store_key(
                spec, "TAP-2.5D*(FastThermal)", budget, time_limited=True
            )
        )
        # The unlimited variant of the same arm keys separately: a
        # limited and an unlimited run must never share a result.
        assert not store.contains(
            arm_store_key(spec, "TAP-2.5D*(FastThermal)", budget)
        )

    def test_incremental_arm_runs_checkpoint_free(self, tmp_path):
        """The incremental delta evaluator's accumulated sums are not
        bitwise-snapshottable, so an --sa-incremental arm must not
        write in-flight checkpoints (it stays result-cached only)."""
        spec = build_golden_spec()
        budget = ExperimentBudget(
            **{
                **build_golden_budget().__dict__,
                "sa_chains": 1,
                "sa_incremental": True,
                "sa_checkpoint_every": 1,
            }
        )
        store = RunStore(tmp_path / "store")
        key = arm_store_key(spec, "TAP-2.5D*(FastThermal)", budget)
        result = run_method_arm(
            spec,
            "TAP-2.5D*(FastThermal)",
            budget,
            cache_dir=tmp_path / "cache",
            store_dir=store.root,
        )
        assert np.isfinite(result.reward)
        # No checkpoint was ever written (a cadence of 1 would have
        # left one after every iteration were the guard missing).
        assert not list(store.root.rglob("*.ckpt.pkl"))
        # The result is still published and reused.
        rerun = RunStore(store.root)
        again = run_method_arm(
            spec,
            "TAP-2.5D*(FastThermal)",
            budget,
            cache_dir=tmp_path / "cache",
            store_dir=rerun.root,
        )
        assert _hex(again.reward) == _hex(result.reward)


class TestTable2Store:
    def test_shards_publish_and_resume_bitwise(self, tmp_path):
        from repro.experiments import run_table2
        from repro.thermal import ThermalConfig

        config = ThermalConfig(rows=24, cols=24, package_margin=8.0)
        kwargs = dict(
            n_systems=4,
            seed=11,
            thermal_config=config,
            cache_dir=tmp_path,
            position_samples=(2, 2),
            jobs=1,
        )
        store = RunStore(tmp_path / "store")
        first = run_table2(store=store, **kwargs)
        assert store.misses == 1 and store.hits == 0

        rerun = RunStore(tmp_path / "store")
        second = run_table2(store=rerun, **kwargs)
        assert rerun.hits == 1 and rerun.misses == 0
        assert second.predictions == first.predictions
        assert second.references == first.references

        # The store forces the sharded path even at jobs=1; it must be
        # bitwise identical to the plain sequential loop.
        plain = run_table2(**kwargs)
        assert [_hex(p) for p in plain.predictions] == [
            _hex(p) for p in first.predictions
        ]


# ----------------------------------------------------------------------
# ablations through the scheduler (satellite)
# ----------------------------------------------------------------------


class TestAblationsSharded:
    def _budget(self):
        return ExperimentBudget(
            rl_epochs=1,
            episodes_per_epoch=2,
            grid_size=10,
            position_samples=(2, 2),
            seed=11,
        )

    def test_jobs2_bitwise_equals_jobs1(self, tmp_path):
        budget = self._budget()
        sequential = run_ablations(
            budget, cache_dir=tmp_path, verbose=False, jobs=1
        )
        pooled = run_ablations(
            budget, cache_dir=tmp_path, verbose=False, jobs=2
        )
        assert [r.method for r in sequential] == [r.method for r in pooled]
        for seq, par in zip(sequential, pooled):
            assert _hex(seq.reward) == _hex(par.reward), seq.method
            assert _hex(seq.wirelength) == _hex(par.wirelength), seq.method
            assert _hex(seq.temperature_c) == _hex(par.temperature_c)

    def test_resume_skips_completed_variants(self, tmp_path):
        budget = self._budget()
        store = RunStore(tmp_path / "store")
        first = run_ablations(
            budget, cache_dir=tmp_path, verbose=False, store=store
        )
        assert store.misses == len(first) and store.hits == 0
        rerun = RunStore(tmp_path / "store")
        second = run_ablations(
            budget, cache_dir=tmp_path, verbose=False, store=rerun
        )
        assert rerun.hits == len(first) and rerun.misses == 0
        for a, b in zip(first, second):
            assert _hex(a.reward) == _hex(b.reward)


# ----------------------------------------------------------------------
# thread-safe hit/miss accounting (PR-10 satellite)
# ----------------------------------------------------------------------


class TestThreadSafeCounters:
    """The serve layer shares one RunStore across request threads;
    ``+= 1`` on a plain attribute loses updates under contention, so
    the counters sit behind a lock with a consistent snapshot API."""

    def test_concurrent_fetches_lose_no_counts(self, tmp_path):
        import threading

        store = RunStore(tmp_path / "store")
        present = "aa" * 32
        absent = "bb" * 32
        store.put(present, {"x": 1})
        per_thread = 200
        threads = 8
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                hit, value = store.fetch(present)
                assert hit and value == {"x": 1}
                hit, value = store.fetch(absent)
                assert not hit and value is None

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert store.counters() == (
            threads * per_thread,
            threads * per_thread,
        )
        # The raw attributes agree with the snapshot once quiescent.
        assert (store.hits, store.misses) == store.counters()

    def test_compressed_payloads_interop_with_uncompressed(self, tmp_path):
        # An opt-in compressed payload on disk loads through the same
        # call sites as an uncompressed one (auto-detection), with the
        # footer still verified over the uncompressed bytes.
        state = {"w": np.linspace(0.0, 1.0, 32), "epoch": 4}
        plain_path = tmp_path / "plain.npz"
        packed_path = tmp_path / "packed.npz"
        save_payload(state, plain_path, kind="test")
        save_payload(state, packed_path, kind="test", compress=True)
        assert packed_path.read_bytes().startswith(b"RPRZLB1\x00")
        plain = load_payload(plain_path, kind="test")
        packed = load_payload(packed_path, kind="test")
        assert plain["w"].tobytes() == packed["w"].tobytes()
        assert plain["epoch"] == packed["epoch"] == 4
