"""Tests for microbump site generation, assignment and wirelength."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bumps import (
    BumpAssigner,
    estimate_wirelength,
    netlist_hpwl,
    perimeter_sites,
)
from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net, Placement
from repro.geometry import Rect


@pytest.fixture
def two_die_system():
    return ChipletSystem(
        "pair",
        Interposer(30, 30),
        (Chiplet("a", 8, 8, 10.0), Chiplet("b", 8, 8, 10.0)),
        (Net("a", "b", wires=32, name="bus"),),
    )


def placed(system, positions):
    p = Placement(system)
    for name, (x, y) in positions.items():
        p.place(name, x, y)
    return p


class TestSites:
    def test_sites_on_perimeter_band(self):
        rect = Rect(5, 5, 8, 8)
        sites = perimeter_sites(rect, pitch=0.5, rings=2, edge_margin=0.2)
        assert len(sites) > 0
        for site in sites:
            assert rect.contains_point(site.x, site.y) or (
                site.x == rect.x2 or site.y == rect.y2
            )
            inset = 0.2 + site.ring * 0.5
            inner = Rect(
                rect.x + inset + 1e-9,
                rect.y + inset + 1e-9,
                rect.w - 2 * inset - 2e-9,
                rect.h - 2 * inset - 2e-9,
            )
            # Site sits on the ring boundary, not strictly inside it.
            on_boundary = (
                abs(site.x - (rect.x + inset)) < 1e-6
                or abs(site.x - (rect.x2 - inset)) < 1e-6
                or abs(site.y - (rect.y + inset)) < 1e-6
                or abs(site.y - (rect.y2 - inset)) < 1e-6
            )
            assert on_boundary, site

    def test_no_duplicate_sites(self):
        sites = perimeter_sites(Rect(0, 0, 6, 6), pitch=0.5, rings=3)
        coords = {(round(s.x, 6), round(s.y, 6)) for s in sites}
        assert len(coords) == len(sites)

    def test_ring_count_capacity(self):
        one = perimeter_sites(Rect(0, 0, 10, 10), pitch=0.5, rings=1)
        three = perimeter_sites(Rect(0, 0, 10, 10), pitch=0.5, rings=3)
        assert len(three) > 2 * len(one)

    def test_tiny_die_fewer_rings(self):
        sites = perimeter_sites(Rect(0, 0, 1.0, 1.0), pitch=0.4, rings=5)
        rings_present = {s.ring for s in sites}
        assert max(rings_present) < 5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            perimeter_sites(Rect(0, 0, 5, 5), pitch=0.0)
        with pytest.raises(ValueError):
            perimeter_sites(Rect(0, 0, 5, 5), rings=0)


class TestEstimators:
    def test_estimate_matches_manual(self, two_die_system):
        p = placed(two_die_system, {"a": (0, 0), "b": (20, 10)})
        # centers (4,4) and (24,14): manhattan = 20 + 10 = 30; 32 wires
        assert estimate_wirelength(p) == pytest.approx(32 * 30.0)

    def test_estimate_ignores_unplaced(self, two_die_system):
        p = placed(two_die_system, {"a": (0, 0)})
        assert estimate_wirelength(p) == 0.0

    def test_hpwl_equals_center_manhattan_for_two_pin(self, two_die_system):
        p = placed(two_die_system, {"a": (0, 0), "b": (15, 3)})
        assert netlist_hpwl(p) == pytest.approx(estimate_wirelength(p))


class TestAssignment:
    def test_total_wires_preserved(self, two_die_system):
        p = placed(two_die_system, {"a": (0, 0), "b": (20, 0)})
        assignment = BumpAssigner(pitch=0.5, rings=2).assign(p)
        assert assignment.net("bus").total_wires == 32

    def test_wirelength_positive_and_reasonable(self, two_die_system):
        p = placed(two_die_system, {"a": (0, 0), "b": (20, 0)})
        assignment = BumpAssigner(pitch=0.5, rings=2).assign(p)
        wl = assignment.total_wirelength
        estimate = estimate_wirelength(p)
        # Bumps sit near facing edges, so assigned < center estimate here.
        assert 0 < wl < estimate

    def test_closer_dies_shorter_wires(self, two_die_system):
        assigner = BumpAssigner(pitch=0.5, rings=2)
        near = assigner.assign(placed(two_die_system, {"a": (0, 0), "b": (9, 0)}))
        far = assigner.assign(placed(two_die_system, {"a": (0, 0), "b": (22, 0)}))
        assert near.total_wirelength < far.total_wirelength

    def test_greedy_vs_hungarian_consistent(self, two_die_system):
        p = placed(two_die_system, {"a": (0, 0), "b": (14, 9)})
        greedy = BumpAssigner(pitch=0.5, rings=2, method="greedy").assign(p)
        hungarian = BumpAssigner(pitch=0.5, rings=2, method="hungarian").assign(p)
        ratio = hungarian.total_wirelength / greedy.total_wirelength
        assert 0.8 < ratio < 1.2

    def test_wire_grouping_reduces_pairs(self, two_die_system):
        p = placed(two_die_system, {"a": (0, 0), "b": (20, 0)})
        fine = BumpAssigner(pitch=0.5, rings=2, wire_group_size=1).assign(p)
        coarse = BumpAssigner(pitch=0.5, rings=2, wire_group_size=8).assign(p)
        assert len(coarse.net("bus").pairs) == 4
        assert len(fine.net("bus").pairs) == 32
        assert coarse.net("bus").total_wires == fine.net("bus").total_wires == 32
        # Grouped wirelength approximates the fine-grained one.
        assert coarse.total_wirelength == pytest.approx(
            fine.total_wirelength, rel=0.35
        )

    def test_capacity_fallback_merges_groups(self):
        """When sites run short, wires share bump pairs instead of failing."""
        system = ChipletSystem(
            "tight",
            Interposer(20, 20),
            (Chiplet("a", 2, 2, 1.0), Chiplet("b", 2, 2, 1.0)),
            (Net("a", "b", wires=100000, name="fat"),),
        )
        p = placed(system, {"a": (0, 0), "b": (10, 0)})
        assignment = BumpAssigner(pitch=0.5, rings=1).assign(p)
        net = assignment.net("fat")
        assert net.total_wires == 100000
        assert net.wires_per_pair.max() > 8  # groups were merged

    def test_capacity_exhaustion_raises(self):
        """Dies too small for any bump site cannot be assigned at all."""
        system = ChipletSystem(
            "nosites",
            Interposer(20, 20),
            (Chiplet("a", 0.2, 0.2, 1.0), Chiplet("b", 2, 2, 1.0)),
            (Net("a", "b", wires=4),),
        )
        p = placed(system, {"a": (0, 0), "b": (10, 0)})
        with pytest.raises(RuntimeError, match="free sites"):
            BumpAssigner(pitch=0.5, rings=1).assign(p)

    def test_sites_not_shared_between_nets(self):
        system = ChipletSystem(
            "tri",
            Interposer(40, 40),
            (
                Chiplet("a", 8, 8, 1.0),
                Chiplet("b", 8, 8, 1.0),
                Chiplet("c", 8, 8, 1.0),
            ),
            (Net("a", "b", wires=20), Net("a", "c", wires=20)),
        )
        p = placed(system, {"a": (16, 16), "b": (0, 16), "c": (32, 16)})
        assignment = BumpAssigner(pitch=0.5, rings=2).assign(p)
        a_sites = set()
        for net in assignment.nets:
            side = 0 if net.src == "a" else 1
            for pair in net.pairs:
                key = (round(pair[side][0], 6), round(pair[side][1], 6))
                assert key not in a_sites, "bump site used twice"
                a_sites.add(key)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BumpAssigner(method="magic")
        with pytest.raises(ValueError):
            BumpAssigner(wire_group_size=0)

    @settings(deadline=None, max_examples=15)
    @given(
        bx=st.floats(10, 22, allow_nan=False),
        by=st.floats(0, 22, allow_nan=False),
        wires=st.integers(1, 64),
    )
    def test_assigned_never_much_longer_than_estimate(self, bx, by, wires):
        system = ChipletSystem(
            "prop",
            Interposer(30, 30),
            (Chiplet("a", 8, 8, 1.0), Chiplet("b", 8, 8, 1.0)),
            (Net("a", "b", wires=wires, name="n"),),
        )
        p = placed(system, {"a": (0, 0), "b": (bx, by)})
        if p.footprint("a").inflated(0.1).overlaps(p.footprint("b")):
            return  # overlapping sample; assignment assumes legal placements
        assignment = BumpAssigner(pitch=0.5, rings=3).assign(p)
        # Perimeter bumps sit within half a die of the centers, so the
        # assigned length can exceed the center estimate by at most one
        # die extent per endpoint (+ slack for site congestion).
        estimate = estimate_wirelength(p)
        assert assignment.total_wirelength <= estimate + wires * 17.0
        assert assignment.total_wirelength >= 0.0
