"""Floorplanning-as-a-service: warm-path server over the run store.

The persistent serving layer the ROADMAP's "millions of users" story
asks for: policies load once, ``FastThermalModel`` tables and
``GridThermalSolver`` factorizations stay warm across requests
(:mod:`~repro.serve.registry`), concurrent requests coalesce into the
batched ``evaluate_batch``/``act_batch`` engines
(:mod:`~repro.serve.batcher`), and whole placement requests memoize
through :class:`~repro.store.RunStore` content addressing
(:mod:`~repro.serve.engine`).  A served placement is bitwise identical
to the same request run through ``repro.cli``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient, ServeError
from repro.serve.engine import SERVE_PLACE_KIND, ServeEngine, place_store_key
from repro.serve.registry import EvaluatorBundle, WarmRegistry, bundle_key
from repro.serve.schema import BadRequest, budget_from_dict, budget_to_dict
from repro.serve.server import FloorplanServer, serve_forever

__all__ = [
    "BadRequest",
    "EvaluatorBundle",
    "FloorplanServer",
    "MicroBatcher",
    "SERVE_PLACE_KIND",
    "ServeClient",
    "ServeEngine",
    "ServeError",
    "WarmRegistry",
    "budget_from_dict",
    "budget_to_dict",
    "bundle_key",
    "place_store_key",
    "serve_forever",
]
