"""Tests for the SA engine, the TAP-2.5D placer and random search."""

import numpy as np
import pytest

from repro.baselines import (
    SAConfig,
    SimulatedAnnealing,
    TAP25DConfig,
    TAP25DPlacer,
    random_search,
)
from repro.baselines.random_search import random_legal_placement
from repro.chiplet import Chiplet, ChipletSystem, Interposer
from repro.chiplet.validate import placement_violations, validate_placement
from repro.reward import RewardCalculator, RewardConfig


@pytest.fixture
def calculator(small_fast_model):
    return RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )


class TestSAEngine:
    """Anneal a 1D quadratic: state is a float, cost (x-3)^2."""

    @staticmethod
    def _propose(state, rng, progress):
        return state + rng.normal(0, 1.0 * (1 - 0.9 * progress))

    @staticmethod
    def _evaluate(state):
        return (state - 3.0) ** 2

    def test_finds_minimum(self):
        sa = SimulatedAnnealing(
            self._propose,
            self._evaluate,
            SAConfig(n_iterations=800, seed=0),
        )
        result = sa.run(initial_state=-10.0)
        assert result.best_state == pytest.approx(3.0, abs=0.3)
        assert result.best_cost < 0.1

    def test_monotone_best_cost(self):
        sa = SimulatedAnnealing(
            self._propose, self._evaluate, SAConfig(n_iterations=200, seed=1)
        )
        result = sa.run(0.0)
        best_costs = [h["best_cost"] for h in result.history]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(best_costs, best_costs[1:]))

    def test_none_proposals_skipped(self):
        calls = {"n": 0}

        def propose(state, rng, progress):
            calls["n"] += 1
            return None  # always infeasible

        sa = SimulatedAnnealing(
            propose, self._evaluate, SAConfig(n_iterations=50, seed=0)
        )
        result = sa.run(0.0)
        assert result.best_state == 0.0
        # Only the initial evaluation (+ calibration attempts) happened.
        assert result.n_evaluations == 1

    def test_explicit_initial_temperature(self):
        sa = SimulatedAnnealing(
            self._propose,
            self._evaluate,
            SAConfig(n_iterations=100, initial_temperature=10.0, seed=0),
        )
        result = sa.run(0.0)
        assert result.n_evaluations >= 1

    def test_time_limit(self):
        def slow_eval(state):
            import time

            time.sleep(0.01)
            return (state - 3.0) ** 2

        sa = SimulatedAnnealing(
            self._propose,
            slow_eval,
            SAConfig(n_iterations=10_000, time_limit=0.3, seed=0),
        )
        result = sa.run(0.0)
        assert result.elapsed < 5.0
        assert len(result.history) < 10_000

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SAConfig(n_iterations=0)
        with pytest.raises(ValueError):
            SAConfig(final_temperature=0.0)


class TestTAP25D:
    def test_initial_placement_legal(self, small_system, calculator):
        placer = TAP25DPlacer(small_system, calculator)
        placement = placer.initial_placement()
        validate_placement(placement)

    def test_proposals_stay_legal(self, small_system, calculator):
        placer = TAP25DPlacer(small_system, calculator)
        placement = placer.initial_placement()
        rng = np.random.default_rng(0)
        accepted = 0
        for _ in range(60):
            candidate = placer.propose(placement, rng, progress=0.2)
            if candidate is None:
                continue
            accepted += 1
            assert not placement_violations(candidate)
        assert accepted > 5  # moves do succeed

    def test_run_improves_over_initial(self, small_system, calculator):
        placer = TAP25DPlacer(
            small_system,
            calculator,
            TAP25DConfig(n_iterations=120, seed=0),
        )
        initial_reward = calculator.evaluate(placer.initial_placement()).reward
        result = placer.run()
        assert result.reward >= initial_reward
        validate_placement(result.placement)
        assert result.n_evaluations > 10

    def test_move_mix_validation(self):
        with pytest.raises(ValueError):
            TAP25DConfig(displace_fraction=0.9, swap_fraction=0.3)

    def test_time_matched_budget(self, small_system, calculator):
        placer = TAP25DPlacer(
            small_system,
            calculator,
            TAP25DConfig(n_iterations=100_000, time_limit=1.0, seed=0),
        )
        result = placer.run()
        assert result.elapsed < 15.0


class TestRandomSearch:
    def test_legal_samples(self, small_system):
        rng = np.random.default_rng(0)
        for _ in range(5):
            placement = random_legal_placement(small_system, rng)
            validate_placement(placement)

    def test_overpacked_raises(self):
        system = ChipletSystem(
            "full",
            Interposer(10, 10, min_spacing=0.5),
            tuple(Chiplet(f"c{i}", 4.5, 4.5, 1.0) for i in range(4)),
        )
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            random_legal_placement(system, rng, max_tries=20)

    def test_search_returns_best(self, small_system, calculator):
        result = random_search(small_system, calculator, n_samples=10, seed=0)
        assert result.n_evaluations == 10
        validate_placement(result.placement)
        # Re-evaluating the winner reproduces its recorded reward.
        again = calculator.evaluate(result.placement)
        assert again.reward == pytest.approx(result.reward)

    def test_more_samples_never_worse(self, small_system, calculator):
        few = random_search(small_system, calculator, n_samples=3, seed=5)
        many = random_search(small_system, calculator, n_samples=15, seed=5)
        assert many.reward >= few.reward
