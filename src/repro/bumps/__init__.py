"""Microbump assignment and wirelength evaluation.

After all chiplets are placed, the reward calculator allocates microbump
(pin) locations for every inter-chiplet wire and sums Manhattan wire
lengths — the TAP-2.5D recipe the paper adopts.  Two granularities:

* :func:`estimate_wirelength` — bundle-level estimate (wires x Manhattan
  center distance); cheap enough for inner search loops.
* :class:`BumpAssigner` — per-wire assignment onto perimeter bump sites
  with occupancy, greedy or Hungarian pairing, returning exact wirelength
  and the full pin map.
"""

from repro.bumps.sites import BumpSite, perimeter_sites
from repro.bumps.assign import BumpAssigner, BumpAssignment, NetAssignment
from repro.bumps.wirelength import (
    estimate_wirelength,
    estimate_wirelength_batch,
    netlist_hpwl,
)
from repro.bumps.delay import (
    NetDelay,
    WireTechnology,
    estimate_delays,
    worst_net_delay,
)

__all__ = [
    "BumpSite",
    "perimeter_sites",
    "BumpAssigner",
    "BumpAssignment",
    "NetAssignment",
    "estimate_wirelength",
    "estimate_wirelength_batch",
    "netlist_hpwl",
    "WireTechnology",
    "NetDelay",
    "estimate_delays",
    "worst_net_delay",
]
