"""Bundle-level wirelength estimators.

These are the cheap proxies used inside search loops; the exact figure
comes from :mod:`repro.bumps.assign` after microbump assignment.
"""

from __future__ import annotations

import numpy as np

from repro.chiplet import Placement

__all__ = ["estimate_wirelength", "estimate_wirelength_batch", "netlist_hpwl"]


def estimate_wirelength(placement: Placement) -> float:
    """Wires-weighted Manhattan center-to-center wirelength (mm).

    Every wire of a net is approximated by the Manhattan distance between
    the two die centers.  This tracks the assigned wirelength closely
    (bump rings sit symmetrically around the center) while costing a few
    microseconds.
    """
    system = placement.system
    total = 0.0
    for net in system.nets:
        if placement.is_placed(net.src) and placement.is_placed(net.dst):
            rect_a = placement.footprint(net.src)
            rect_b = placement.footprint(net.dst)
            total += net.wires * rect_a.center_manhattan(rect_b)
    return total


def estimate_wirelength_batch(placements) -> np.ndarray:
    """Vectorized :func:`estimate_wirelength` over a batch of placements.

    The search-baseline hot path: multi-chain annealers evaluate every
    chain's candidate per step, and all candidates share one system, so
    die centers stack into a ``(batch, dies, 2)`` array and every net's
    contribution is computed for the whole batch at once.  Values match
    the scalar estimator to float rounding (the per-net summation order
    differs); batches that mix systems or hold incomplete placements
    fall back to the scalar loop.
    """
    placements = list(placements)
    if not placements:
        return np.empty(0)
    system = placements[0].system
    if any(
        p.system is not system or not p.is_complete for p in placements
    ):
        return np.array([estimate_wirelength(p) for p in placements])
    names = system.chiplet_names
    index = {name: i for i, name in enumerate(names)}
    # Half-extents per die and orientation, so centers come from the raw
    # (x, y, rotated) tuples without building Rect objects.
    half = np.array(
        [(c.width / 2.0, c.height / 2.0) for c in system.chiplets]
    )
    half_rot = half[:, ::-1]
    centers = np.empty((len(placements), len(names), 2))
    for b, placement in enumerate(placements):
        for name, (x, y, rotated) in placement.positions.items():
            i = index[name]
            h = half_rot[i] if rotated else half[i]
            centers[b, i, 0] = x + h[0]
            centers[b, i, 1] = y + h[1]
    src = np.array([index[net.src] for net in system.nets], dtype=np.intp)
    dst = np.array([index[net.dst] for net in system.nets], dtype=np.intp)
    wires = np.array([net.wires for net in system.nets], dtype=np.float64)
    if not len(src):
        return np.zeros(len(placements))
    manhattan = np.abs(centers[:, src] - centers[:, dst]).sum(axis=2)
    return manhattan @ wires


def netlist_hpwl(placement: Placement) -> float:
    """Half-perimeter wirelength of each net's bounding box, wire-weighted.

    The classic floorplanning metric, provided for comparability with
    monolithic floorplanners; for two-pin chiplet bundles it equals the
    Manhattan center distance.
    """
    system = placement.system
    total = 0.0
    for net in system.nets:
        if placement.is_placed(net.src) and placement.is_placed(net.dst):
            rect_a = placement.footprint(net.src)
            rect_b = placement.footprint(net.dst)
            width = abs(rect_a.cx - rect_b.cx)
            height = abs(rect_a.cy - rect_b.cy)
            total += net.wires * (width + height)
    return total
