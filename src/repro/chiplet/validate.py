"""Design-rule validation for systems and placements.

The environment's action mask *prevents* illegal states during RL
placement; these checkers *verify* them, and are what tests and the SA
baseline (whose moves can propose anything) rely on.
"""

from __future__ import annotations

import math

from repro.chiplet.system import ChipletSystem, Placement

__all__ = [
    "ValidationError",
    "validate_system",
    "validate_placement",
    "placement_is_legal",
]


class ValidationError(ValueError):
    """A system or placement violates a structural or design rule."""


def validate_system(system: ChipletSystem) -> None:
    """Check that a system is placeable at all.

    Raises
    ------
    ValidationError
        If any chiplet cannot fit on the interposer in either orientation,
        or the summed chiplet area exceeds the interposer area.
    """
    interposer = system.interposer
    for chiplet in system.chiplets:
        fits_upright = (
            chiplet.width <= interposer.width and chiplet.height <= interposer.height
        )
        fits_rotated = (
            chiplet.height <= interposer.width and chiplet.width <= interposer.height
        )
        if not (fits_upright or fits_rotated):
            raise ValidationError(
                f"chiplet {chiplet.name!r} ({chiplet.width}x{chiplet.height} mm) "
                f"cannot fit on interposer {interposer.width}x{interposer.height} mm"
            )
    if system.total_chiplet_area > interposer.area:
        raise ValidationError(
            f"system {system.name!r} over-packs the interposer: "
            f"{system.total_chiplet_area:.1f} mm^2 of chiplets on "
            f"{interposer.area:.1f} mm^2"
        )


def placement_violations(placement: Placement, require_complete: bool = True) -> list:
    """Return a list of human-readable violations (empty when legal)."""
    system = placement.system
    interposer = system.interposer
    problems = []
    if require_complete and not placement.is_complete:
        missing = set(system.chiplet_names) - set(placement.placed_names)
        problems.append(f"unplaced chiplets: {sorted(missing)}")
    rects = placement.footprints()
    bounds = interposer.bounds
    for name, rect in rects.items():
        if not bounds.contains_rect(rect):
            problems.append(f"{name} out of interposer bounds: {rect}")
    names = list(rects)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if rects[a].overlaps(rects[b]):
                problems.append(f"{a} overlaps {b}")
            elif rects[a].gap(rects[b]) < interposer.min_spacing - 1e-9:
                problems.append(
                    f"{a} and {b} closer than min_spacing="
                    f"{interposer.min_spacing} mm"
                )
    return problems


def placement_is_legal(
    placement: Placement, require_complete: bool = True
) -> bool:
    """Boolean twin of :func:`placement_violations`, built for hot loops.

    Annealing proposal loops only need pass/fail, not messages, and call
    this thousands of times per run.  This version works on raw position
    tuples (no Rect objects, no message formatting) and returns at the
    first violation; decisions — including the 1e-9 mm tolerances — are
    identical to :func:`placement_violations`.
    """
    system = placement.system
    interposer = system.interposer
    positions = placement.positions
    if require_complete and len(positions) != system.n_chiplets:
        return False
    tol = 1e-9
    x_limit = interposer.width + tol
    y_limit = interposer.height + tol
    min_gap = interposer.min_spacing - 1e-9
    coords = []
    for name, (x, y, rotated) in positions.items():
        chiplet = system.chiplet(name)
        if rotated:
            w, h = chiplet.height, chiplet.width
        else:
            w, h = chiplet.width, chiplet.height
        x2, y2 = x + w, y + h
        if x < -tol or y < -tol or x2 > x_limit or y2 > y_limit:
            return False
        coords.append((x, y, x2, y2))
    # Pairwise clearance, mirroring Rect.overlaps / Rect.gap exactly.
    for i in range(len(coords)):
        xi, yi, xi2, yi2 = coords[i]
        for j in range(i + 1, len(coords)):
            xj, yj, xj2, yj2 = coords[j]
            if xi < xj2 and xj < xi2 and yi < yj2 and yj < yi2:
                return False  # open interiors intersect
            gx = xj - xi2
            if xi - xj2 > gx:
                gx = xi - xj2
            if gx < 0.0:
                gx = 0.0
            gy = yj - yi2
            if yi - yj2 > gy:
                gy = yi - yj2
            if gy < 0.0:
                gy = 0.0
            if math.hypot(gx, gy) < min_gap:
                return False
    return True


def validate_placement(placement: Placement, require_complete: bool = True) -> None:
    """Raise :class:`ValidationError` when the placement breaks any rule."""
    problems = placement_violations(placement, require_complete=require_complete)
    if problems:
        raise ValidationError("; ".join(problems))
