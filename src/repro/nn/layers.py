"""Neural-network modules built on the autograd tensor."""

from __future__ import annotations

import numpy as np

from repro.nn.init import kaiming_uniform, orthogonal
from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "Conv2d", "ReLU", "Tanh", "Flatten", "Sequential"]


class Module:
    """Base class: parameter discovery, train/eval hooks, state dicts."""

    def parameters(self) -> list:
        """All trainable tensors of this module and its children."""
        params = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self, prefix: str = "") -> dict:
        """Name -> array snapshot of all parameters."""
        state = {}
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                state[key] = value.data.copy()
            elif isinstance(value, Module):
                state.update(value.state_dict(prefix=f"{key}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        state.update(item.state_dict(prefix=f"{key}.{i}."))
        return state

    def load_state_dict(self, state: dict, prefix: str = "") -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                if key not in state:
                    raise KeyError(f"missing parameter {key!r}")
                if state[key].shape != value.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{state[key].shape} vs {value.data.shape}"
                    )
                value.data[...] = state[key]
            elif isinstance(value, Module):
                value.load_state_dict(state, prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item.load_state_dict(state, prefix=f"{key}.{i}.")

    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Fully connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Matrix shape.
    init:
        ``"orthogonal"`` (with ``gain``) or ``"kaiming"``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        gain: float = np.sqrt(2.0),
        init: str = "orthogonal",
        rng: np.random.Generator = None,
    ):
        if init == "orthogonal":
            w = orthogonal((in_features, out_features), gain=gain, rng=rng)
        elif init == "kaiming":
            w = kaiming_uniform((in_features, out_features), fan_in=in_features, rng=rng)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Tensor(w, requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class Conv2d(Module):
    """2D convolution layer (stride/padding, square kernels)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        gain: float = np.sqrt(2.0),
        rng: np.random.Generator = None,
    ):
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Tensor(orthogonal(shape, gain=gain, rng=rng), requires_grad=True)
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)
        self.stride = stride
        self.padding = padding
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return x.conv2d(
            self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Flatten(Module):
    """(N, ...) -> (N, -1)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]
