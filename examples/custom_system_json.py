"""Define a system in JSON, load it, and compare all placement methods.

Shows the data-driven workflow: systems can live in version-controlled
JSON files and be floorplanned without writing Python.

Run:
    python examples/custom_system_json.py
"""

import json
import tempfile
from pathlib import Path

from repro.baselines import TAP25DConfig, TAP25DPlacer, random_search
from repro.chiplet import load_system
from repro.reward import RewardCalculator, RewardConfig
from repro.thermal import FastThermalModel, ThermalConfig
from repro.thermal.characterize import characterize_for_system
from repro.viz import render_floorplan

SYSTEM_JSON = {
    "name": "edge-ai-module",
    "interposer": {"width": 28.0, "height": 22.0, "min_spacing": 0.2},
    "chiplets": [
        {"name": "npu", "width": 9.0, "height": 9.0, "power": 30.0, "kind": "ai"},
        {"name": "cpu", "width": 7.0, "height": 7.0, "power": 12.0, "kind": "cpu"},
        {"name": "lpddr", "width": 6.0, "height": 9.0, "power": 2.5, "kind": "dram"},
        {"name": "io", "width": 5.0, "height": 4.0, "power": 1.5, "kind": "io"},
    ],
    "nets": [
        {"src": "npu", "dst": "lpddr", "wires": 512},
        {"src": "cpu", "dst": "lpddr", "wires": 256},
        {"src": "npu", "dst": "cpu", "wires": 256},
        {"src": "cpu", "dst": "io", "wires": 64},
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "system.json"
        path.write_text(json.dumps(SYSTEM_JSON, indent=2))
        system = load_system(path)
    print(f"loaded {system.name!r}: {system.n_chiplets} dies, "
          f"{system.total_wires} wires")

    thermal_config = ThermalConfig(r_convection=0.3)
    tables = characterize_for_system(system, thermal_config)
    calc = RewardCalculator(
        FastThermalModel(tables, thermal_config),
        RewardConfig(lambda_wl=5e-4, t_limit=85.0),
    )

    print("\nrandom search (100 samples)...")
    rand = random_search(system, calc, n_samples=100, seed=0)
    print(f"  reward {rand.reward:.4f}, WL {rand.breakdown.wirelength:.0f} mm, "
          f"T {rand.breakdown.max_temperature_c:.1f} C")

    print("TAP-2.5D simulated annealing (400 iterations)...")
    placer = TAP25DPlacer(system, calc, TAP25DConfig(n_iterations=400, seed=0))
    sa = placer.run()
    print(f"  reward {sa.reward:.4f}, WL {sa.breakdown.wirelength:.0f} mm, "
          f"T {sa.breakdown.max_temperature_c:.1f} C")

    best = sa if sa.reward > rand.reward else rand
    print("\nbest floorplan:")
    print(render_floorplan(best.placement, width=50, height=20))


if __name__ == "__main__":
    main()
