"""Bundle-level wirelength estimators.

These are the cheap proxies used inside search loops; the exact figure
comes from :mod:`repro.bumps.assign` after microbump assignment.
"""

from __future__ import annotations

from repro.chiplet import Placement

__all__ = ["estimate_wirelength", "netlist_hpwl"]


def estimate_wirelength(placement: Placement) -> float:
    """Wires-weighted Manhattan center-to-center wirelength (mm).

    Every wire of a net is approximated by the Manhattan distance between
    the two die centers.  This tracks the assigned wirelength closely
    (bump rings sit symmetrically around the center) while costing a few
    microseconds.
    """
    system = placement.system
    total = 0.0
    for net in system.nets:
        if placement.is_placed(net.src) and placement.is_placed(net.dst):
            rect_a = placement.footprint(net.src)
            rect_b = placement.footprint(net.dst)
            total += net.wires * rect_a.center_manhattan(rect_b)
    return total


def netlist_hpwl(placement: Placement) -> float:
    """Half-perimeter wirelength of each net's bounding box, wire-weighted.

    The classic floorplanning metric, provided for comparability with
    monolithic floorplanners; for two-pin chiplet bundles it equals the
    Manhattan center distance.
    """
    system = placement.system
    total = 0.0
    for net in system.nets:
        if placement.is_placed(net.src) and placement.is_placed(net.dst):
            rect_a = placement.footprint(net.src)
            rect_b = placement.footprint(net.dst)
            width = abs(rect_a.cx - rect_b.cx)
            height = abs(rect_a.cy - rect_b.cy)
            total += net.wires * (width + height)
    return total
