"""Autograd correctness tests, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, x0: np.ndarray, atol=1e-6, rtol=1e-5):
    """Compare autograd gradient to finite differences for scalar output."""
    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    auto = t.grad

    def scalar_fn(arr):
        return build(Tensor(arr)).item()

    numeric = numeric_grad(scalar_fn, x0.copy())
    np.testing.assert_allclose(auto, numeric, atol=atol, rtol=rtol)


class TestBasicOps:
    def test_add_backward(self):
        check_gradient(lambda t: (t + 3.0).sum(), np.array([1.0, -2.0, 0.5]))

    def test_mul_backward(self):
        check_gradient(lambda t: (t * t).sum(), np.array([1.0, -2.0, 0.5]))

    def test_div_backward(self):
        check_gradient(
            lambda t: (t / 2.5 + 1.0 / (t + 10.0)).sum(), np.array([1.0, 2.0])
        )

    def test_pow_backward(self):
        check_gradient(lambda t: (t**3).sum(), np.array([1.0, 2.0, -1.5]))

    def test_sub_neg(self):
        check_gradient(lambda t: (5.0 - t - t).sum(), np.array([2.0, 3.0]))

    def test_broadcast_gradient_sums(self):
        w = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = (w + b).sum()
        out.backward()
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_chain_rule_accumulation(self):
        """A tensor used twice accumulates both contributions."""
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()


class TestNonlinearities:
    def test_relu(self):
        check_gradient(lambda t: t.relu().sum(), np.array([1.0, -2.0, 0.5]))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), np.array([0.3, -1.2]))

    def test_exp_log(self):
        check_gradient(lambda t: (t.exp() + (t + 5.0).log()).sum(), np.array([0.1, 1.0]))

    def test_abs(self):
        check_gradient(lambda t: t.abs().sum(), np.array([1.5, -2.5]))

    def test_clip_gradient_zero_outside(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_minimum_follows_smaller(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        a.minimum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestReductionsAndShapes:
    def test_sum_axis(self):
        check_gradient(
            lambda t: (t.sum(axis=0) * np.array([1.0, 2.0])).sum(),
            np.arange(6, dtype=np.float64).reshape(3, 2),
        )

    def test_mean(self):
        check_gradient(lambda t: t.mean(), np.arange(4, dtype=np.float64))

    def test_mean_axis_keepdims(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        out = x.mean(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 0.25))

    def test_reshape_roundtrip(self):
        check_gradient(
            lambda t: (t.reshape(3, 2) ** 2).sum(),
            np.arange(6, dtype=np.float64).reshape(2, 3),
        )

    def test_transpose(self):
        x = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        (x.transpose((1, 0)) * np.ones((3, 2))).sum().backward()
        assert x.grad.shape == (2, 3)


class TestMatmul:
    def test_matmul_values(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        b = Tensor(np.array([[5.0], [6.0]]))
        np.testing.assert_allclose((a @ b).data, [[17.0], [39.0]])

    def test_matmul_gradient(self):
        rng = np.random.default_rng(0)
        a0 = rng.normal(size=(3, 4))
        b0 = rng.normal(size=(4, 2))
        b = Tensor(b0)
        check_gradient(lambda t: (t @ b).sum(), a0)
        a = Tensor(a0)
        check_gradient(lambda t: (a @ t).sum(), b0)


class TestSoftmax:
    def test_log_softmax_normalizes(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]))
        lp = x.log_softmax()
        np.testing.assert_allclose(np.exp(lp.data).sum(), 1.0)

    def test_log_softmax_stable_for_huge_logits(self):
        x = Tensor(np.array([[1e9, 0.0, -1e9]]))
        lp = x.log_softmax()
        assert np.isfinite(lp.data).all()

    def test_log_softmax_gradient(self):
        rng = np.random.default_rng(1)
        x0 = rng.normal(size=(2, 5))
        weights = rng.normal(size=(2, 5))
        check_gradient(
            lambda t: (t.log_softmax(axis=-1) * weights).sum(), x0
        )

    def test_softmax_matches_exp_log_softmax(self):
        x = Tensor(np.array([[0.5, -0.5, 2.0]]))
        np.testing.assert_allclose(
            x.softmax().data, np.exp(x.log_softmax().data)
        )


class TestGather:
    def test_gather_values(self):
        x = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3))
        out = x.gather(np.array([2, 0]))
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_gather_gradient_scatter(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        x.gather(np.array([1, 2])).sum().backward()
        expected = np.array([[0, 1, 0], [0, 0, 1.0]])
        np.testing.assert_allclose(x.grad, expected)


class TestConv2d:
    def test_identity_kernel(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 1, 5, 5)))
        w = Tensor(np.array([[[[1.0]]]]))
        out = x.conv2d(w)
        np.testing.assert_allclose(out.data, x.data)

    def test_output_shape(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        assert x.conv2d(w, padding=1).shape == (2, 4, 8, 8)
        assert x.conv2d(w).shape == (2, 4, 6, 6)
        assert x.conv2d(w, stride=2, padding=1).shape == (2, 4, 4, 4)

    def test_channel_mismatch(self):
        x = Tensor(np.zeros((1, 3, 4, 4)))
        w = Tensor(np.zeros((2, 5, 3, 3)))
        with pytest.raises(ValueError):
            x.conv2d(w)

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 1, 4, 4))
        w = rng.normal(size=(1, 1, 2, 2))
        out = Tensor(x).conv2d(Tensor(w)).data[0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i : i + 2, j : j + 2] * w[0, 0]).sum()
        np.testing.assert_allclose(out, expected)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_gradients_input_weight_bias(self, stride, padding):
        rng = np.random.default_rng(3)
        x0 = rng.normal(size=(2, 2, 5, 5))
        w0 = rng.normal(size=(3, 2, 3, 3))
        b0 = rng.normal(size=3)

        w_const = Tensor(w0)
        b_const = Tensor(b0)
        check_gradient(
            lambda t: t.conv2d(w_const, b_const, stride=stride, padding=padding).sum(),
            x0,
            atol=1e-5,
        )
        x_const = Tensor(x0)
        check_gradient(
            lambda t: x_const.conv2d(t, b_const, stride=stride, padding=padding).sum(),
            w0,
            atol=1e-5,
        )
        check_gradient(
            lambda t: x_const.conv2d(w_const, t, stride=stride, padding=padding).sum(),
            b0,
            atol=1e-5,
        )


class TestNoGrad:
    def test_no_graph_recorded(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_nested_restores(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            with no_grad():
                pass
            y = x * 1.0
        z = (x * 2).sum()
        assert not y.requires_grad
        assert z.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data
