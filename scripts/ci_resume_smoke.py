"""Interrupt-and-resume smoke test for the run store (CI job).

Drives ``scripts/run_experiments.py`` end to end, the way a user whose
sweep dies mid-flight would:

1. **Reference** — run a tiny-budget Table I+III sweep to completion
   into its own run store.
2. **Interrupt** — start the identical sweep into a *fresh* store and
   SIGKILL the whole process group once at least one method arm has
   published (mid-sweep, possibly mid-arm).
3. **Resume** — re-run the killed sweep with ``--resume``.  Assert that
   every artifact the killed run published was left untouched (same
   mtime and content — completed arms never re-execute) and that the
   final table JSONs match the reference run exactly (the resumed
   sweep is bitwise-faithful; time matching is disabled so every arm
   is deterministic).
4. **Re-run** — invoke the finished sweep once more with ``--resume``
   and assert *no* store artifact changes at all: a completed sweep
   re-executes zero method-arm jobs.
5. **Ctrl-C** — repeat interrupt+resume with SIGINT instead of SIGKILL
   (sent to the parent only, exactly like a terminal Ctrl-C): the
   scheduler must tear its worker pool down promptly instead of
   blocking on in-flight arms or leaving orphans, and the store it
   leaves behind must resume to the same reference tables.

Exit code 0 = all assertions hold.  Designed to be fast (~1-2 min) and
deterministic on noisy CI hosts; if the interrupted run finishes before
the kill lands (very fast machine), the mid-arm resume leg degrades to
a completed-sweep resume, which steps 3-4 still verify.

Usage:
    PYTHONPATH=src python scripts/ci_resume_smoke.py [--workdir DIR]
"""

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SWEEP_ARGS = [
    "--skip",
    "table2",
    "--epochs",
    "3",
    "--episodes",
    "2",
    "--grid",
    "12",
    "--sa-iters",
    "8",
    "--sa-chains",
    "2",
    "--batch-size",
    "4",
    "--positions",
    "2",
    "--t1-systems",
    "multi_gpu",
    "--t3-cases",
    "1",
    "--no-time-match",
    "--rl-checkpoint-every",
    "1",
    "--sa-checkpoint-every",
    "10",
]


def sweep_command(store: Path, out: Path, jobs: int) -> list:
    return [
        sys.executable,
        str(REPO_ROOT / "scripts" / "run_experiments.py"),
        *SWEEP_ARGS,
        "--jobs",
        str(jobs),
        "--resume",
        "--store-dir",
        str(store),
        "--out",
        str(out),
    ]


def run_sweep(store: Path, out: Path, jobs: int, env: dict) -> None:
    subprocess.run(
        sweep_command(store, out, jobs),
        check=True,
        env=env,
        cwd=REPO_ROOT,
    )


def snapshot_results(store: Path) -> dict:
    """{relative path: (mtime_ns, sha256)} of every published result."""
    results = {}
    root = store / "results"
    if not root.exists():
        return results
    for path in sorted(root.rglob("*.pkl")):
        stat = path.stat()
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        results[str(path.relative_to(store))] = (stat.st_mtime_ns, digest)
    return results


def interrupt_mid_sweep(
    store: Path, out: Path, jobs: int, env: dict, sig=signal.SIGKILL
) -> bool:
    """Start the sweep and interrupt it mid-flight with ``sig``.

    ``SIGKILL`` goes to the whole process group (hard machine-death
    simulation).  ``SIGINT`` goes to the parent process only — exactly
    what a terminal Ctrl-C delivers to a foreground job leader — so the
    sweep itself is responsible for tearing down its pool workers; if
    it fails to exit within the grace period the group is SIGKILLed and
    the orphan-cleanup bug would surface here as a timeout escalation.

    Returns True when the interrupt landed before the sweep finished.
    """
    proc = subprocess.Popen(
        sweep_command(store, out, jobs),
        env=env,
        cwd=REPO_ROOT,
        start_new_session=True,  # so the kill also reaps pool workers
    )
    deadline = time.monotonic() + 600
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                print("NOTE: sweep finished before the interrupt landed")
                return False
            if snapshot_results(store):
                # At least one arm is published; a later arm is now (or
                # will shortly be) in flight.  Let it make some progress
                # past its first checkpoint, then interrupt everything.
                time.sleep(1.0)
                break
            time.sleep(0.1)
        if proc.poll() is not None:
            print("NOTE: sweep finished before the interrupt landed")
            return False
        if sig == signal.SIGINT:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=60)
                raise AssertionError(
                    "sweep did not exit within 60 s of SIGINT (pool "
                    "shutdown is blocking on in-flight jobs?)"
                )
        else:
            os.killpg(proc.pid, sig)
            proc.wait(timeout=60)
        assert proc.returncode != 0, (
            "interrupted sweep exited 0 — the interrupt was swallowed"
        )
        return True
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on errors
            os.killpg(proc.pid, signal.SIGKILL)


def load_table_rows(out: Path) -> dict:
    """{(system, method): (reward, wirelength, temperature_c)}."""
    rows = {}
    for name in ("table1_multi_gpu.json", "table3.json"):
        payload = json.loads((out / name).read_text())
        for row in payload["results"]:
            rows[(row["system"], row["method"])] = (
                row["reward"],
                row["wirelength"],
                row["temperature_c"],
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workdir", type=str, default=None)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="resume_smoke_"))
    workdir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )

    print("=== reference sweep (uninterrupted) ===")
    run_sweep(workdir / "ref_store", workdir / "ref_out", args.jobs, env)
    reference = load_table_rows(workdir / "ref_out")
    assert reference, "reference sweep produced no table rows"

    print("\n=== interrupted sweep ===")
    store = workdir / "resume_store"
    killed = interrupt_mid_sweep(store, workdir / "killed_out", args.jobs, env)
    completed_before = snapshot_results(store)
    print(
        f"killed={killed}; {len(completed_before)} arms published "
        "before the interrupt"
    )

    print("\n=== resumed sweep ===")
    run_sweep(store, workdir / "resumed_out", args.jobs, env)
    after_resume = snapshot_results(store)

    for rel, stamp in completed_before.items():
        assert after_resume.get(rel) == stamp, (
            f"completed arm re-executed or rewritten on resume: {rel}"
        )
    print(
        f"OK: all {len(completed_before)} pre-kill artifacts untouched "
        "by the resume"
    )

    resumed = load_table_rows(workdir / "resumed_out")
    assert resumed.keys() == reference.keys(), (
        "resumed sweep covers different arms than the reference"
    )
    for arm, expected in reference.items():
        assert resumed[arm] == expected, (
            f"{arm}: resumed {resumed[arm]} != reference {expected}"
        )
    print(f"OK: all {len(reference)} arms match the uninterrupted run exactly")

    print("\n=== completed sweep re-run (--resume) ===")
    run_sweep(store, workdir / "rerun_out", args.jobs, env)
    after_rerun = snapshot_results(store)
    assert after_rerun == after_resume, (
        "re-running a completed sweep touched store artifacts "
        "(method-arm jobs executed)"
    )
    assert load_table_rows(workdir / "rerun_out") == reference
    print("OK: completed sweep re-executed zero method-arm jobs")

    print("\n=== Ctrl-C interrupted sweep (SIGINT) ===")
    int_store = workdir / "sigint_store"
    interrupt_mid_sweep(
        int_store, workdir / "sigint_out", args.jobs, env, sig=signal.SIGINT
    )
    published_at_interrupt = snapshot_results(int_store)
    print(f"{len(published_at_interrupt)} arms published before the Ctrl-C")

    print("\n=== resume after Ctrl-C ===")
    run_sweep(int_store, workdir / "sigint_resumed_out", args.jobs, env)
    after_sigint_resume = snapshot_results(int_store)
    for rel, stamp in published_at_interrupt.items():
        assert after_sigint_resume.get(rel) == stamp, (
            f"completed arm re-executed or rewritten on resume: {rel}"
        )
    sigint_resumed = load_table_rows(workdir / "sigint_resumed_out")
    assert sigint_resumed.keys() == reference.keys()
    for arm, expected in reference.items():
        assert sigint_resumed[arm] == expected, (
            f"{arm}: post-Ctrl-C resume {sigint_resumed[arm]} != "
            f"reference {expected}"
        )
    print(
        f"OK: Ctrl-C left a recoverable store; all {len(reference)} arms "
        "match the uninterrupted run exactly"
    )

    print("\nresume smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
