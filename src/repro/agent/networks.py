"""The actor-critic network (paper Section II-B).

"The policy network and the value network share the same feature
encoding CNN layers and two separate fully connected layers are used to
get the probability matrix and expected reward."

Encoder: three 3x3 conv layers (stride 1, 2, 2) over the observation
image.  Heads: one fully connected layer each — policy logits over the
action grid (masked categorical) and a scalar value.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Conv2d,
    Flatten,
    Linear,
    MaskedCategorical,
    Module,
    ReLU,
    Sequential,
    Tensor,
    no_grad,
)

__all__ = ["ActorCritic"]


class ActorCritic(Module):
    """Shared CNN encoder with policy and value heads.

    Parameters
    ----------
    obs_shape:
        (channels, rows, cols) of the observation image.
    n_actions:
        Size of the flat action space (grid cells, x2 with rotation).
    channels:
        Conv widths of the three encoder layers.
    rng:
        Weight-init random source.
    """

    def __init__(
        self,
        obs_shape: tuple,
        n_actions: int,
        channels: tuple = (16, 32, 32),
        rng: np.random.Generator = None,
    ):
        rng = rng or np.random.default_rng()
        c, rows, cols = obs_shape
        c1, c2, c3 = channels
        self.encoder = Sequential(
            Conv2d(c, c1, 3, stride=1, padding=1, rng=rng),
            ReLU(),
            Conv2d(c1, c2, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(c2, c3, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Flatten(),
        )
        feat_rows = (rows + 1) // 2
        feat_rows = (feat_rows + 1) // 2
        feat_cols = (cols + 1) // 2
        feat_cols = (feat_cols + 1) // 2
        feature_dim = c3 * feat_rows * feat_cols
        # Small-gain policy head -> near-uniform initial policy.
        self.policy_head = Linear(feature_dim, n_actions, gain=0.01, rng=rng)
        self.value_head = Linear(feature_dim, 1, gain=1.0, rng=rng)
        self.obs_shape = tuple(obs_shape)
        self.n_actions = n_actions

    # ------------------------------------------------------------------

    def evaluate(self, observations: np.ndarray, masks: np.ndarray):
        """Differentiable forward pass for PPO updates.

        Returns (MaskedCategorical, values tensor of shape (N,)).
        """
        obs = Tensor(np.asarray(observations, dtype=np.float64))
        features = self.encoder(obs)
        logits = self.policy_head(features)
        values = self.value_head(features).reshape(-1)
        dist = MaskedCategorical(logits, np.asarray(masks, dtype=bool))
        return dist, values

    def act(
        self,
        observation: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator,
        greedy: bool = False,
    ) -> tuple:
        """Rollout action selection (no graph recorded).

        Returns (action, log_prob, value) as Python scalars.
        """
        with no_grad():
            dist, values = self.evaluate(
                observation[None, ...], np.asarray(mask, dtype=bool)[None, ...]
            )
            action = int(dist.mode()[0]) if greedy else int(dist.sample(rng)[0])
            log_prob = float(dist.log_prob(np.array([action])).data[0])
            value = float(values.data[0])
        return action, log_prob, value
