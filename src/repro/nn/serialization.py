"""Checkpointing: module state dicts to/from ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_state_dict", "load_state_dict"]


def save_state_dict(state: dict, path) -> None:
    """Write a ``{name: array}`` state dict to ``path`` (.npz)."""
    np.savez_compressed(Path(path), **state)


def load_state_dict(path) -> dict:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path)) as data:
        return {key: data[key].copy() for key in data.files}
