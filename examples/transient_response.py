"""Transient thermal response of a floorplan (extension example).

Steady-state analysis says *how hot*; this example shows *how fast*:
the step response of a floorplan after power-on, its t90 time constant,
and how duty cycling keeps the peak below the steady-state value —
useful when a floorplan only has to survive bursts.

Run:
    python examples/transient_response.py
"""

from repro.chiplet import Chiplet, ChipletSystem, Interposer, Placement
from repro.experiments.curves import ascii_curve
from repro.thermal import (
    GridThermalSolver,
    ThermalConfig,
    TransientThermalSolver,
)


def main() -> None:
    interposer = Interposer(30.0, 30.0)
    config = ThermalConfig(rows=32, cols=32, package_margin=10.0)
    system = ChipletSystem(
        "burst-accelerator",
        interposer,
        (
            Chiplet("npu", 10.0, 10.0, 70.0, kind="ai"),
            Chiplet("sram", 6.0, 8.0, 5.0, kind="mem"),
        ),
    )
    placement = Placement(system)
    placement.place("npu", 10.0, 10.0)
    placement.place("sram", 22.0, 11.0)

    solver = GridThermalSolver(interposer, config, reuse_factorization=True)
    steady = solver.evaluate(placement)
    print(f"steady-state max temperature: {steady.max_temperature_celsius:.2f} C")

    transient = TransientThermalSolver(solver, dt=0.5)

    print("\nstep response (power on at t=0, 120 s)...")
    step = transient.simulate(placement, duration=120.0)
    print(f"t50 = {step.time_to_fraction(0.5):.1f} s, "
          f"t90 = {step.time_to_fraction(0.9):.1f} s")
    print(ascii_curve(
        step.max_temperature - 273.15,
        width=64,
        height=10,
        label="max temperature (C) vs time, constant power",
    ))

    print("\n50% duty cycle (5 s on / 5 s off)...")
    pulsed = transient.simulate(
        placement,
        duration=120.0,
        power_scale=lambda t: 1.0 if (t % 10.0) < 5.0 else 0.0,
    )
    print(f"peak with duty cycling: {pulsed.max_temperature.max() - 273.15:.2f} C "
          f"(vs {step.max_temperature.max() - 273.15:.2f} C constant)")
    print(ascii_curve(
        pulsed.max_temperature - 273.15,
        width=64,
        height=10,
        label="max temperature (C) vs time, 50% duty",
    ))


if __name__ == "__main__":
    main()
