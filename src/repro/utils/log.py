"""Lightweight logging setup shared by trainers and experiment scripts."""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_configured = False


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a logger writing to stderr with a single shared handler.

    Safe to call repeatedly; the root configuration happens once.
    """
    global _configured
    if not _configured:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root = logging.getLogger("repro")
        root.addHandler(handler)
        root.setLevel(level)
        root.propagate = False
        _configured = True
    return logging.getLogger(name if name.startswith("repro") else f"repro.{name}")
