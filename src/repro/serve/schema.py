"""Request/response schema for the floorplanning service.

JSON carries every scalar surface: Python's ``json`` emits
``repr``-quality floats and parses them back to the exact same double,
so a reward or coordinate that crosses the wire round-trips bit for
bit — the serve layer's bitwise-parity guarantee needs no side-channel
hex encoding.  Binary surfaces (policy upload) reuse the
:mod:`repro.nn.serialization` payload format — the same sealed,
versioned, integrity-checked bytes the collection workers receive in
the per-epoch weight broadcast.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.report import MethodResult
from repro.experiments.runner import METHOD_ORDER, ExperimentBudget

__all__ = [
    "BadRequest",
    "budget_from_dict",
    "budget_to_dict",
    "breakdown_to_dict",
    "method_result_to_dict",
    "parse_place_request",
    "parse_evaluate_request",
    "parse_rollout_request",
]

#: ExperimentBudget fields that are tuples — JSON turns them into lists
#: on the wire, so decoding must restore them before the (frozen,
#: hash-keyed) dataclass is rebuilt.
_TUPLE_BUDGET_FIELDS = ("position_samples",)

_BUDGET_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ExperimentBudget)
)


class BadRequest(ValueError):
    """Client error: malformed or semantically invalid request body."""


def budget_to_dict(budget: ExperimentBudget) -> dict:
    """JSON-safe budget encoding (the exact ``submit`` wire format)."""
    return dataclasses.asdict(budget)


def budget_from_dict(data: dict) -> ExperimentBudget:
    """Rebuild a budget from its wire encoding.

    Unknown fields are rejected rather than ignored — a typo'd knob
    silently running at its default would poison the memoization key's
    meaning (the caller thinks it asked for something it didn't).
    """
    if not isinstance(data, dict):
        raise BadRequest("budget must be a JSON object")
    unknown = set(data) - _BUDGET_FIELDS
    if unknown:
        raise BadRequest(f"unknown budget fields {sorted(unknown)!r}")
    decoded = dict(data)
    for name in _TUPLE_BUDGET_FIELDS:
        if name in decoded and isinstance(decoded[name], list):
            decoded[name] = tuple(decoded[name])
    try:
        return ExperimentBudget(**decoded)
    except (TypeError, ValueError) as error:
        raise BadRequest(f"invalid budget: {error}") from error


def breakdown_to_dict(breakdown) -> dict:
    """RewardBreakdown -> JSON.  The elapsed_* fields are wall-clock
    measurements and are deliberately excluded from the semantic
    surface clients compare bitwise."""
    return {
        "reward": breakdown.reward,
        "wirelength": breakdown.wirelength,
        "max_temperature_c": breakdown.max_temperature_c,
        "thermal_penalty": breakdown.thermal_penalty,
    }


def method_result_to_dict(result: MethodResult) -> dict:
    """MethodResult -> JSON.  ``runtime_s`` is wall clock (never part of
    the bitwise-parity surface) but is reported for observability."""
    return {
        "system": result.system,
        "method": result.method,
        "reward": result.reward,
        "wirelength": result.wirelength,
        "temperature_c": result.temperature_c,
        "runtime_s": result.runtime_s,
        "extra": dict(result.extra),
    }


def _require(body: dict, field: str, types, what: str):
    value = body.get(field)
    if not isinstance(value, types) or isinstance(value, bool) and types is not bool:
        raise BadRequest(f"{field!r} must be {what}")
    return value


def parse_place_request(body: dict) -> dict:
    """Validate a ``POST /v1/place`` body.

    ``{"system": <benchmark name>, "method": <METHOD_ORDER member>,
    "budget": {...}}`` — the budget object is optional and defaults to
    ``ExperimentBudget()``, exactly like the CLI.
    """
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    system = _require(body, "system", str, "a benchmark name string")
    method = _require(body, "method", str, "a method name string")
    if method not in METHOD_ORDER:
        raise BadRequest(
            f"unknown method {method!r}; available: {list(METHOD_ORDER)}"
        )
    budget = budget_from_dict(body.get("budget") or {})
    return {"system": system, "method": method, "budget": budget}


def parse_evaluate_request(body: dict) -> dict:
    """Validate a ``POST /v1/evaluate`` body.

    ``{"system": <name>, "placement": <Placement.as_dict()>,
    "evaluator": "fast"|"hotspot", "budget": {...}}``.
    """
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    system = _require(body, "system", str, "a benchmark name string")
    placement = _require(body, "placement", dict, "a placement object")
    evaluator = body.get("evaluator", "fast")
    if evaluator not in ("fast", "hotspot"):
        raise BadRequest("'evaluator' must be 'fast' or 'hotspot'")
    budget = budget_from_dict(body.get("budget") or {})
    return {
        "system": system,
        "placement": placement,
        "evaluator": evaluator,
        "budget": budget,
    }


def parse_rollout_request(body: dict) -> dict:
    """Validate a ``POST /v1/rollout`` body.

    ``{"policy": <registered name>, "system": <name>, "seed": <int>,
    "greedy": <bool>, "budget": {...}}`` — the budget supplies
    ``grid_size`` (and the warm-cache knobs); the policy's channel
    widths were fixed at registration.
    """
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    policy = _require(body, "policy", str, "a registered policy name")
    system = _require(body, "system", str, "a benchmark name string")
    seed = body.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise BadRequest("'seed' must be an integer")
    greedy = body.get("greedy", False)
    if not isinstance(greedy, bool):
        raise BadRequest("'greedy' must be a boolean")
    budget = budget_from_dict(body.get("budget") or {})
    return {
        "policy": policy,
        "system": system,
        "seed": seed,
        "greedy": greedy,
        "budget": budget,
    }
