"""Command-line interface: ``rlplanner <subcommand>``.

Subcommands map one-to-one onto the experiment harness:

* ``table1`` / ``table2`` / ``table3`` / ``ablations`` — regenerate a
  paper table at a chosen budget scale
* ``train`` — train RLPlanner on one benchmark and print the floorplan
* ``sa`` — run the TAP-2.5D baseline on one benchmark
* ``serve`` — run the persistent floorplanning service (warm
  evaluators, micro-batched requests, run-store memoization)
* ``submit`` — send one placement request to a running service; a
  served result is bitwise identical to the same (benchmark, method,
  budget) run locally through ``train``/``sa``

``--jobs N`` (or ``--jobs auto``) fans independent work over a process
pool; ``--resume`` makes sweeps durable through the content-addressed
run store (completed arms are skipped, interrupted arms restart from
their latest checkpoint — bitwise identical to an uninterrupted run).

Fault tolerance: ``--retries`` retries transiently failing jobs (dead
workers, OS errors, timeouts) on fresh workers with seeded-jitter
backoff, ``--job-timeout`` kills and retries stragglers, and
``--keep-going`` quarantines permanently failing arms — completing
every independent arm, printing the sweep report, and exiting nonzero.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ExperimentBudget,
    run_ablations,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.report import format_table, save_results
from repro.experiments.runner import run_all_methods
from repro.parallel import (
    RetryPolicy,
    SweepReport,
    resolve_collect_jobs,
    resolve_jobs,
)
from repro.store import DEFAULT_STORE_DIR, RunStore
from repro.systems import benchmark_names, get_benchmark

__all__ = ["main"]


def _budget_from_args(args) -> ExperimentBudget:
    if args.paper_scale:
        return ExperimentBudget.paper_scale()
    return ExperimentBudget(
        rl_epochs=args.epochs,
        episodes_per_epoch=args.episodes,
        grid_size=args.grid,
        sa_iterations_hotspot=args.sa_iterations,
        seed=args.seed,
        rollout_batch_size=args.batch_size,
        collect_jobs=args.collect_jobs,
        collect_workers=args.collect_workers,
        collect_bind=args.collect_bind,
        compress_broadcast=args.compress_broadcast,
        async_collect=args.async_collect,
        sa_chains=args.sa_chains,
        sa_incremental=args.sa_incremental,
        hotspot_reuse_factorization=args.hotspot_reuse_lu,
    )


def _add_budget_args(parser) -> None:
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--episodes", type=int, default=8)
    parser.add_argument("--grid", type=int, default=24)
    parser.add_argument("--sa-iterations", type=int, default=250)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="rollout batch width for RL collection "
        "(1 = sequential engine, >1 = lockstep batched engine)",
    )
    parser.add_argument(
        "--collect-jobs",
        type=resolve_collect_jobs,
        default=1,
        help="worker processes for RL episode collection within one "
        "training run ('auto' = available CPUs, falling back to "
        "in-process with a warning on single-CPU hosts); bitwise "
        "identical to 1 at any count, requires --batch-size >= 2 to "
        "take effect",
    )
    parser.add_argument(
        "--collect-workers",
        type=int,
        default=0,
        help="remote (multi-machine) episode collection: open a "
        "lease-based TCP coordinator and cut each epoch into this many "
        "wave-aligned slices served by scripts/collect_worker.py "
        "processes (0 = off); bitwise identical to in-process at any "
        "count, degrades to --collect-jobs then in-process when no "
        "workers are reachable; requires --batch-size >= 2",
    )
    parser.add_argument(
        "--collect-bind",
        default="127.0.0.1:0",
        help="host:port the collection coordinator binds (port 0 = "
        "ephemeral); use 0.0.0.0:<port> to accept workers from other "
        "machines",
    )
    parser.add_argument(
        "--compress-broadcast",
        action="store_true",
        help="zlib-compress the per-epoch weight broadcast to "
        "collection workers (transport encoding only: decoded weights "
        "and collected episodes are bitwise identical either way)",
    )
    parser.add_argument(
        "--async-collect",
        action="store_true",
        help="pipeline episode collection with PPO updates: epoch k+1 "
        "is collected with the pre-update epoch-k policy while the "
        "learner runs update k (one-epoch staleness; reproducible at "
        "a fixed seed, but not bitwise-equal to the default lockstep "
        "schedule); requires --batch-size >= 2",
    )
    parser.add_argument(
        "--sa-chains",
        type=int,
        default=16,
        help="lockstep annealing chains for both SA baselines "
        "(1 = sequential engine, >1 = batched best-of-N chains; the "
        "HotSpot arm solves all chains through one factorization per "
        "step)",
    )
    parser.add_argument(
        "--sa-incremental",
        action="store_true",
        help="single-chain fast-thermal SA evaluates through the "
        "incremental O(moved x n) delta path (needs --sa-chains 1)",
    )
    parser.add_argument(
        "--hotspot-reuse-lu",
        dest="hotspot_reuse_lu",
        action="store_true",
        help="experiment mode: keep the HotSpot arm's splu factorization "
        "alive across SA steps (drops the per-step 'run the HotSpot "
        "binary' cost parity)",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full budgets (hours of CPU time)",
    )
    parser.add_argument("--output", type=str, default=None, help="JSON output path")


def _add_jobs_arg(parser) -> None:
    # Only on the subcommands that actually fan work over a pool
    # (table1/table3/ablation arms, table2 shards) — single-arm
    # commands would silently ignore it.
    parser.add_argument(
        "--jobs",
        type=resolve_jobs,
        default=1,
        metavar="N|auto",
        help="worker processes for the experiment scheduler (1 = the "
        "bit-exact sequential path; N fans independent arms over a "
        "pool; 'auto' = the CPUs available to this process)",
    )


def _add_resume_args(parser) -> None:
    parser.add_argument(
        "--resume",
        action="store_true",
        help="make the sweep durable through the run store: completed "
        "arms are skipped, interrupted arms restart from their latest "
        "checkpoint with bitwise-identical results (wall-clock-limited "
        "arms — the time-matched TAP-2.5D* — are result-cached only "
        "and restart from scratch if interrupted)",
    )
    parser.add_argument(
        "--store-dir",
        type=str,
        default=str(DEFAULT_STORE_DIR),
        help="run-store root used by --resume "
        f"(default: {DEFAULT_STORE_DIR})",
    )


def _add_fault_args(parser) -> None:
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="K",
        help="retry a transiently failed job (dead worker, OS error, "
        "timeout) up to K times on a fresh worker with exponential "
        "seeded-jitter backoff; deterministic failures never retry "
        "(default: 2, 0 disables)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per job; a straggler past it is killed "
        "and retried as a transient failure (needs --jobs >= 2; "
        "default: no timeout)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="quarantine permanently failing jobs instead of aborting "
        "the sweep: only their dependency-downstream jobs are skipped, "
        "every independent job completes (and publishes under "
        "--resume), the sweep report is printed, and the exit code is "
        "nonzero",
    )


def _fault_kwargs(args) -> dict:
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    return dict(
        policy=RetryPolicy(max_attempts=args.retries + 1),
        job_timeout=args.job_timeout,
        keep_going=args.keep_going,
    )


def _finish_report(report: SweepReport) -> int:
    """Print the triage when anything went wrong; map it to an exit code."""
    if not report.ok:
        print(report.summary(), file=sys.stderr)
        return 1
    if report.retried:
        print(report.summary(), file=sys.stderr)
    return 0


def _store_from_args(args) -> RunStore | None:
    return RunStore(args.store_dir) if args.resume else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="rlplanner",
        description="RLPlanner reproduction (DATE 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table1", "table3", "ablations"):
        p = sub.add_parser(table, help=f"regenerate {table}")
        _add_budget_args(p)
        _add_jobs_arg(p)
        _add_resume_args(p)
        _add_fault_args(p)

    p2 = sub.add_parser("table2", help="fast thermal model accuracy/speed")
    p2.add_argument("--systems", type=int, default=300)
    p2.add_argument("--seed", type=int, default=7)
    _add_jobs_arg(p2)
    _add_resume_args(p2)
    _add_fault_args(p2)
    p2.add_argument("--output", type=str, default=None)

    pt = sub.add_parser("train", help="train RLPlanner on one benchmark")
    pt.add_argument("benchmark", choices=benchmark_names())
    pt.add_argument("--rnd", action="store_true", help="enable the RND bonus")
    _add_budget_args(pt)

    ps = sub.add_parser("sa", help="run the TAP-2.5D baseline")
    ps.add_argument("benchmark", choices=benchmark_names())
    ps.add_argument(
        "--thermal",
        choices=("fast", "hotspot"),
        default="hotspot",
        help="thermal evaluator inside the annealer",
    )
    _add_budget_args(ps)

    pv = sub.add_parser(
        "serve", help="run the persistent floorplanning service"
    )
    pv.add_argument("--host", default="127.0.0.1")
    pv.add_argument("--port", type=int, default=8337)
    pv.add_argument(
        "--store-dir",
        type=str,
        default=str(DEFAULT_STORE_DIR),
        help="run-store root for whole-request memoization "
        f"(default: {DEFAULT_STORE_DIR}); identical (system, method, "
        "budget) requests are answered from the store with zero compute",
    )
    pv.add_argument(
        "--no-store",
        action="store_true",
        help="disable request memoization (warm caches stay on)",
    )
    pv.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="thermal characterization cache dir (default: the "
        "harness-wide .cache/thermal_tables)",
    )
    pv.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch window: how long a request holds its batch "
        "open for concurrent companions before computing (default 2ms)",
    )
    pv.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="cap on coalesced requests per batched evaluator call",
    )

    pb = sub.add_parser(
        "submit", help="submit one placement request to a running service"
    )
    pb.add_argument("benchmark", choices=benchmark_names())
    pb.add_argument(
        "--url",
        default="http://127.0.0.1:8337",
        help="base URL of a 'rlplanner serve' instance",
    )
    pb.add_argument(
        "--method",
        choices=(
            "RLPlanner",
            "RLPlanner(RND)",
            "TAP-2.5D(HotSpot)",
            "TAP-2.5D*(FastThermal)",
        ),
        default="TAP-2.5D*(FastThermal)",
    )
    _add_budget_args(pb)

    args = parser.parse_args(argv)
    report = SweepReport()

    if args.command == "table1":
        results = run_table1(
            _budget_from_args(args),
            jobs=args.jobs,
            store=_store_from_args(args),
            report=report,
            **_fault_kwargs(args),
        )
    elif args.command == "table3":
        results = run_table3(
            _budget_from_args(args),
            jobs=args.jobs,
            store=_store_from_args(args),
            report=report,
            **_fault_kwargs(args),
        )
    elif args.command == "ablations":
        results = run_ablations(
            _budget_from_args(args),
            jobs=args.jobs,
            store=_store_from_args(args),
            report=report,
            **_fault_kwargs(args),
        )
    elif args.command == "table2":
        table2 = run_table2(
            n_systems=args.systems,
            seed=args.seed,
            jobs=args.jobs,
            store=_store_from_args(args),
            report=report,
            **_fault_kwargs(args),
        )
        print(table2.format())
        if args.output:
            import json
            from pathlib import Path

            Path(args.output).write_text(
                json.dumps(
                    {
                        "metrics": table2.metrics,
                        "speedup": table2.speedup,
                        "n_systems": table2.n_systems,
                    },
                    indent=2,
                )
            )
        return _finish_report(report)
    elif args.command == "train":
        spec = get_benchmark(args.benchmark)
        budget = _budget_from_args(args)
        method = "RLPlanner(RND)" if args.rnd else "RLPlanner"
        results = run_all_methods(spec, budget, methods=(method,))
        print(format_table(results))
        return 0
    elif args.command == "sa":
        spec = get_benchmark(args.benchmark)
        budget = _budget_from_args(args)
        method = (
            "TAP-2.5D(HotSpot)"
            if args.thermal == "hotspot"
            else "TAP-2.5D*(FastThermal)"
        )
        results = run_all_methods(spec, budget, methods=(method,))
        print(format_table(results))
        return 0
    elif args.command == "serve":
        from repro.serve import serve_forever

        serve_forever(
            args.host,
            args.port,
            store_dir=None if args.no_store else args.store_dir,
            cache_dir=args.cache_dir,
            window_s=args.batch_window_ms / 1000.0,
            max_batch=args.max_batch,
        )
        return 0
    elif args.command == "submit":
        from repro.serve import ServeClient
        from repro.serve.schema import budget_to_dict

        client = ServeClient(args.url)
        response = client.place(
            args.benchmark,
            args.method,
            budget_to_dict(_budget_from_args(args)),
        )
        result = response["result"]
        print(
            f"{result['system']}  {result['method']}  "
            f"reward={result['reward']!r}  "
            f"wirelength={result['wirelength']!r}mm  "
            f"T={result['temperature_c']!r}C  "
            f"cache={response['cache']}  "
            f"evaluator_calls={response['evaluator_calls']}"
        )
        if getattr(args, "output", None):
            import json
            from pathlib import Path

            Path(args.output).write_text(json.dumps(response, indent=2))
        return 0
    else:  # pragma: no cover - argparse guards this
        parser.error(f"unknown command {args.command}")

    if getattr(args, "output", None):
        save_results(results, args.output)
    return _finish_report(report)


if __name__ == "__main__":
    sys.exit(main())
