"""Tests for the actor-critic network and the training loop."""

import numpy as np
import pytest

from repro.agent import ActorCritic, RLPlannerTrainer, TrainerConfig
from repro.env import EnvConfig, FloorplanEnv
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import PPOConfig


@pytest.fixture
def env(small_system, small_fast_model):
    calc = RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )
    return FloorplanEnv(small_system, calc, EnvConfig(grid_size=12))


def small_trainer(env, **overrides):
    defaults = dict(
        epochs=3,
        episodes_per_epoch=4,
        seed=0,
        log_every=0,
        encoder_channels=(4, 8, 8),
        ppo=PPOConfig(minibatch_size=8, update_epochs=2),
    )
    defaults.update(overrides)
    return RLPlannerTrainer(env, TrainerConfig(**defaults))


class TestActorCritic:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        net = ActorCritic((3, 12, 12), 144, channels=(4, 8, 8), rng=rng)
        obs = rng.normal(size=(5, 3, 12, 12))
        masks = np.ones((5, 144), bool)
        dist, values = net.evaluate(obs, masks)
        assert dist.probs.shape == (5, 144)
        assert values.shape == (5,)

    def test_act_respects_mask(self):
        rng = np.random.default_rng(0)
        net = ActorCritic((2, 8, 8), 64, channels=(4, 4, 4), rng=rng)
        mask = np.zeros(64, bool)
        mask[[3, 17]] = True
        for _ in range(10):
            action, log_prob, value = net.act(
                rng.normal(size=(2, 8, 8)), mask, rng
            )
            assert action in (3, 17)
            assert log_prob <= 0.0
            assert np.isfinite(value)

    def test_greedy_act_deterministic(self):
        rng = np.random.default_rng(1)
        net = ActorCritic((2, 8, 8), 64, channels=(4, 4, 4), rng=rng)
        obs = rng.normal(size=(2, 8, 8))
        mask = np.ones(64, bool)
        actions = {net.act(obs, mask, rng, greedy=True)[0] for _ in range(5)}
        assert len(actions) == 1

    def test_initial_policy_near_uniform(self):
        """The 0.01-gain policy head should start close to uniform."""
        rng = np.random.default_rng(2)
        net = ActorCritic((2, 8, 8), 64, channels=(4, 4, 4), rng=rng)
        dist, _ = net.evaluate(
            rng.normal(size=(1, 2, 8, 8)), np.ones((1, 64), bool)
        )
        entropy = float(dist.entropy().data[0])
        assert entropy > 0.95 * np.log(64)

    def test_odd_grid_feature_dims(self):
        rng = np.random.default_rng(3)
        net = ActorCritic((7, 15, 15), 225, channels=(4, 4, 4), rng=rng)
        dist, values = net.evaluate(
            rng.normal(size=(2, 7, 15, 15)), np.ones((2, 225), bool)
        )
        assert dist.probs.shape == (2, 225)


class TestTrainer:
    def test_collect_episode_complete(self, env):
        trainer = small_trainer(env)
        episode, info = trainer.collect_episode()
        assert episode.length == env.episode_length
        assert "breakdown" in info or info.get("deadlock")

    def test_training_runs_and_tracks_best(self, env):
        trainer = small_trainer(env)
        result = trainer.train()
        assert result.epochs_run == 3
        assert len(result.history) == 3
        assert result.best_breakdown is not None
        assert result.best_placement is not None
        assert result.best_reward >= max(
            h["mean_reward"] for h in result.history
        ) - 50  # sanity: best >= means - margin
        # Best placement re-evaluates to the recorded reward.
        re_eval = env.reward_calculator.evaluate(result.best_placement)
        assert re_eval.reward == pytest.approx(result.best_reward, abs=1e-6)

    def test_rnd_variant_runs(self, env):
        trainer = small_trainer(env, use_rnd=True)
        result = trainer.train()
        assert "rnd_loss" in result.history[-1]

    def test_time_limit_stops_early(self, env):
        trainer = small_trainer(env, epochs=10_000, time_limit=1.5)
        result = trainer.train()
        assert result.epochs_run < 10_000
        assert result.elapsed < 30.0

    def test_reproducible_with_seed(self, env):
        r1 = small_trainer(env, seed=7).train()
        r2 = small_trainer(env, seed=7).train()
        assert r1.best_reward == pytest.approx(r2.best_reward)
        assert [h["mean_reward"] for h in r1.history] == pytest.approx(
            [h["mean_reward"] for h in r2.history]
        )

    def test_checkpoint_roundtrip(self, env, tmp_path):
        trainer = small_trainer(env)
        trainer.train()
        path = tmp_path / "agent.npz"
        trainer.save_checkpoint(path)
        fresh = small_trainer(env, seed=99)
        fresh.load_checkpoint(path)
        obs, mask = env.reset()
        rng = np.random.default_rng(0)
        a1, _, v1 = trainer.network.act(obs, mask, rng, greedy=True)
        a2, _, v2 = fresh.network.act(obs, mask, rng, greedy=True)
        assert a1 == a2
        assert v1 == pytest.approx(v2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
