"""Shared machinery for the Table I / Table III comparisons.

Four methods, as in the paper:

* ``RLPlanner``          — PPO agent, fast thermal model in the loop
* ``RLPlanner(RND)``     — same, plus the RND exploration bonus
* ``TAP-2.5D(HotSpot)``  — SA baseline evaluating with the grid solver
* ``TAP-2.5D*(FastThermal)`` — SA baseline on the fast thermal model,
  wall-clock-matched to the RL training budget (the paper's asterisk)

Budgets are scaled-down by default so the whole suite runs in minutes;
``ExperimentBudget.paper_scale()`` restores the paper's 600-epoch regime.

Every (benchmark x method) arm is a standalone, picklable job
(:func:`run_method_arm`) scheduled through :mod:`repro.parallel`:
``jobs=1`` executes them in process and in submission order — bit-for-
bit the pre-scheduler sequential harness, pinned by
``tests/data/golden_experiments.json`` — while ``jobs=N`` fans
independent arms over a process pool.  Two structural edges make that
safe:

* a per-benchmark *prewarm* job characterizes (or loads) the thermal
  tables before any arm starts, so pool workers share one on-disk
  cache entry instead of racing to recompute it (the cache itself is
  file-locked and atomically written as a second line of defense);
* the wall-clock-matched ``TAP-2.5D*(FastThermal)`` arm declares a
  dependency on its benchmark's RL arm and receives the *measured* RL
  runtime through the scheduler's parent-side injection hook, exactly
  as the sequential path threads it.
"""

from __future__ import annotations

import functools
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.baselines import TAP25DConfig, TAP25DPlacer
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.report import MethodResult
from repro.parallel import JobSpec, run_jobs
from repro.reward import RewardCalculator
from repro.rl import PPOConfig, RNDConfig
from repro.store import RunStore, store_key
from repro.systems import BenchmarkSpec
from repro.thermal import FastThermalModel, GridThermalSolver
from repro.thermal.characterize import load_or_characterize
from repro.utils import get_logger

__all__ = [
    "ExperimentBudget",
    "arm_store_key",
    "as_store",
    "budget_store_payload",
    "build_evaluators",
    "method_arm_jobs",
    "prewarm_thermal_tables",
    "run_all_methods",
    "run_method_arm",
    "spec_fingerprint",
]

_logger = get_logger("experiments.runner")

DEFAULT_CACHE_DIR = Path(".cache/thermal_tables")

METHOD_ORDER = (
    "RLPlanner",
    "RLPlanner(RND)",
    "TAP-2.5D(HotSpot)",
    "TAP-2.5D*(FastThermal)",
)


@dataclass(frozen=True)
class ExperimentBudget:
    """Knobs that trade fidelity for runtime.

    The defaults regenerate table *shapes* in minutes on a laptop CPU.
    """

    rl_epochs: int = 30
    episodes_per_epoch: int = 8
    grid_size: int = 24
    sa_iterations_hotspot: int = 250
    sa_time_matched: bool = True
    position_samples: tuple = (7, 7)
    seed: int = 0
    # Rollout batch width for RL episode collection (1 = the original
    # sequential engine; >1 = lockstep batched collection).  Batched
    # collection is the default since PR 2; the batched engine's
    # per-episode RNG streams produce different (equally valid)
    # trajectories than the golden-pinned sequential engine, which
    # remains available via rollout_batch_size=1.
    rollout_batch_size: int = 16
    # Lockstep annealing chains for both SA baselines: best-of-N chains
    # with one batched reward pass per step.  The fast-thermal arm
    # (TAP-2.5D*) vectorizes its table lookups across the chains; the
    # HotSpot arm (TAP-2.5D) solves all chains' candidates as one
    # multi-RHS block through a single factorization per step
    # (bitwise identical to sequential chains), so extra chains
    # amortize — rather than multiply — its dominant factorization
    # cost.  Both arms spread their total proposal budget over the
    # chains, keeping evaluation counts comparable across chain counts.
    sa_chains: int = 16
    # Single-chain fast-thermal SA may use the incremental O(moved x n)
    # delta evaluator (FastThermalModel(..., incremental=True)).  Only
    # effective when sa_chains == 1 — the delta path exploits the
    # move locality of one scalar evaluate() chain.
    sa_incremental: bool = False
    # Keep the grid solver's splu factorization alive across SA steps
    # in the HotSpot arm (the homogeneous conductance matrix is
    # placement-independent).  Off by default: the paper's comparison
    # charges the HotSpot arm a fresh "run the HotSpot binary" cost per
    # lockstep step, which this experiment mode would remove.
    hotspot_reuse_factorization: bool = False
    # Resume checkpoint cadences, active only when an arm runs against a
    # run store (``--resume``): full trainer state every N epochs, full
    # annealer state every N SA iterations.  Neither knob changes any
    # result — a resumed arm is bitwise identical to an uninterrupted
    # one — so they are excluded from the arm's store key.  Arms whose
    # runs are not reproducible to begin with (wall-clock-limited or
    # incremental-evaluator SA) run checkpoint-free and rely on
    # result-level caching only.
    rl_checkpoint_every: int = 5
    sa_checkpoint_every: int = 50
    # Worker processes for RL episode collection *within* one arm
    # (TrainerConfig.collect_jobs).  Orthogonal to the arm-level
    # ``jobs`` sharding: ``jobs`` spreads independent arms over cores,
    # ``collect_jobs`` spreads one arm's episodes.  Bitwise-invariant
    # by construction (and needs rollout_batch_size >= 2; with the
    # sequential engine the trainer warns and collects in-process), so
    # like the checkpoint cadences it never enters a store key.
    collect_jobs: int = 1
    # Remote (multi-machine) episode collection within one RL arm
    # (TrainerConfig.collect_workers / collect_bind): >= 1 opens a
    # lease-based TCP coordinator and serves wave-aligned slices to
    # whatever scripts/collect_worker.py processes lease in, degrading
    # to the local pool / in-process when none do.  Bitwise-invariant
    # like collect_jobs (slices are pure in weight bytes + seed
    # streams), so neither knob enters a store key.
    collect_workers: int = 0
    collect_bind: str = "127.0.0.1:0"
    # zlib-compress the per-epoch weight broadcast to collection
    # workers (TrainerConfig.compress_broadcast).  A transport encoding
    # only — decoded weights and collected episodes are bitwise
    # identical either way — so it never enters a store key.
    compress_broadcast: bool = False
    # Pipeline episode collection with PPO updates: epoch k+1 is
    # collected with the pre-update epoch-k policy while the learner
    # runs update k (TrainerConfig.async_collect).  One epoch of policy
    # staleness changes the training trajectory, so unlike
    # ``collect_jobs`` this IS semantic and stays in store keys —
    # async and lockstep results must never alias.  Requires
    # rollout_batch_size >= 2.
    async_collect: bool = False

    @classmethod
    def paper_scale(cls) -> "ExperimentBudget":
        """The paper's regime (hours of CPU time)."""
        return cls(
            rl_epochs=600,
            episodes_per_epoch=16,
            grid_size=32,
            sa_iterations_hotspot=2000,
        )


def _spec_sizes(spec: BenchmarkSpec) -> list:
    """Die sizes (including rotations) needing characterization."""
    sizes = []
    for chiplet in spec.system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    return sizes


# ----------------------------------------------------------------------
# run-store keys
# ----------------------------------------------------------------------

ARM_JOB_KIND = "method_arm"

#: Budget knobs that cannot change an arm's result and therefore must
#: not invalidate its store key (checkpoint cadences only matter while
#: a run is in flight; a resumed run is bitwise-identical regardless).
_NON_SEMANTIC_BUDGET_FIELDS = (
    "rl_checkpoint_every",
    "sa_checkpoint_every",
    "collect_jobs",
    "collect_workers",
    "collect_bind",
    "compress_broadcast",
)


def spec_fingerprint(spec: BenchmarkSpec) -> dict:
    """Content description of a benchmark for store-key hashing.

    Everything that can change an arm's result is included: the full
    die/netlist geometry and the thermal/reward calibration.  Free-form
    metadata and display strings are not.
    """
    system = spec.system
    return {
        "name": spec.name,
        "interposer": {
            "width": system.interposer.width,
            "height": system.interposer.height,
            "min_spacing": system.interposer.min_spacing,
        },
        "chiplets": [
            {
                "name": c.name,
                "width": c.width,
                "height": c.height,
                "power": c.power,
                "rotatable": c.rotatable,
            }
            for c in system.chiplets
        ],
        "nets": [
            {"src": n.src, "dst": n.dst, "wires": n.wires}
            for n in system.nets
        ],
        "thermal": asdict(spec.thermal_config),
        "reward": asdict(spec.reward_config),
    }


def budget_store_payload(budget: ExperimentBudget) -> dict:
    """Budget fields that participate in store keys.

    Shared by every keyed job family (method arms here, ablation
    variants in :mod:`repro.experiments.ablations`) so "which budget
    knobs invalidate cached results" has exactly one definition.
    """
    payload = asdict(budget)
    for name in _NON_SEMANTIC_BUDGET_FIELDS:
        payload.pop(name, None)
    return payload


def arm_store_key(
    spec: BenchmarkSpec,
    method: str,
    budget: ExperimentBudget,
    time_limited: bool = False,
) -> str:
    """Content-addressed store key of one (benchmark x method) arm.

    Deterministic across processes and sessions — any worker resumes or
    reuses any other worker's artifacts.  ``time_limited`` records
    *whether* the arm runs under a wall-clock cap (the time-matched
    ``TAP-2.5D*`` arm vs the same arm run unlimited in a
    methods-subset sweep) — the two produce different results and must
    not share a key.  The cap's *value* is deliberately excluded:
    time-limited results are machine-dependent by nature, so a stored
    result is preferred over re-measuring.
    """
    return store_key(
        ARM_JOB_KIND,
        {
            "spec": spec_fingerprint(spec),
            "method": method,
            "budget": budget_store_payload(budget),
            "time_limited": bool(time_limited),
        },
    )


def prewarm_thermal_tables(
    spec: BenchmarkSpec, budget: ExperimentBudget, cache_dir=None
) -> str:
    """Job function: characterize (or load) one benchmark's tables.

    Runs before any of the benchmark's method arms so pool workers find
    the tables on disk instead of recomputing them per arm; returns the
    cache fingerprint.  Prewarm jobs for different benchmarks are
    independent, so a pool parallelizes characterization itself.
    """
    cache_dir = DEFAULT_CACHE_DIR if cache_dir is None else Path(cache_dir)
    tables = load_or_characterize(
        spec.system.interposer,
        _spec_sizes(spec),
        spec.thermal_config,
        position_samples=budget.position_samples,
        cache_dir=cache_dir,
    )
    return tables.fingerprint


def build_evaluators(spec: BenchmarkSpec, budget: ExperimentBudget, cache_dir=None):
    """Characterize tables and build both thermal evaluators + rewards."""
    cache_dir = DEFAULT_CACHE_DIR if cache_dir is None else Path(cache_dir)
    tables = load_or_characterize(
        spec.system.interposer,
        _spec_sizes(spec),
        spec.thermal_config,
        position_samples=budget.position_samples,
        cache_dir=cache_dir,
    )
    fast_model = FastThermalModel(tables, spec.thermal_config)
    # Fresh factorization per call = HotSpot-like per-evaluation cost.
    # Multi-chain SA still amortizes: solve_footprints_many factorizes
    # once per batched call (one lockstep step), not once per candidate.
    # ``hotspot_reuse_factorization`` additionally keeps the LU alive
    # across steps (experiment mode; not HotSpot-cost-faithful).
    solver = GridThermalSolver(
        spec.system.interposer,
        spec.thermal_config,
        reuse_factorization=budget.hotspot_reuse_factorization,
    )
    reward_fast = RewardCalculator(fast_model, spec.reward_config)
    reward_solver = RewardCalculator(solver, spec.reward_config)
    return {
        "fast_model": fast_model,
        "solver": solver,
        "reward_fast": reward_fast,
        "reward_solver": reward_solver,
        "tables": tables,
    }


def _run_rl(
    spec, reward_calculator, budget, use_rnd: bool, resume=None, capture=None
) -> MethodResult:
    env = FloorplanEnv(
        spec.system,
        reward_calculator,
        EnvConfig(grid_size=budget.grid_size),
    )
    trainer = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=budget.rl_epochs,
            episodes_per_epoch=budget.episodes_per_epoch,
            batch_size=budget.rollout_batch_size,
            collect_jobs=budget.collect_jobs,
            collect_workers=budget.collect_workers,
            collect_bind=budget.collect_bind,
            compress_broadcast=budget.compress_broadcast,
            async_collect=budget.async_collect,
            seed=budget.seed,
            use_rnd=use_rnd,
            rnd=RNDConfig(bonus_scale=0.5),
            ppo=PPOConfig(),
            log_every=0,
            checkpoint_every=(
                budget.rl_checkpoint_every if resume is not None else 0
            ),
        ),
    )
    checkpoint_fn = None
    if resume is not None:
        state = resume.load()
        if state is not None:
            _logger.info(
                "%s: resuming from epoch %d/%d",
                spec.name,
                state["progress"]["epochs_run"],
                budget.rl_epochs,
            )
            trainer.load_state_dict(state)
        checkpoint_fn = resume.save
    result = trainer.train(checkpoint_fn=checkpoint_fn)
    if capture is not None:
        capture["placement"] = result.best_placement
    breakdown = result.best_breakdown
    method = "RLPlanner(RND)" if use_rnd else "RLPlanner"
    if breakdown is None:
        # Every episode deadlocked (possible on tight packings at very
        # small budgets); report the deadlock penalty honestly.
        return MethodResult(
            system=spec.name,
            method=method,
            reward=result.best_reward,
            wirelength=float("nan"),
            temperature_c=float("nan"),
            runtime_s=result.elapsed,
            extra={
                "epochs": result.epochs_run,
                "deadlocks": result.deadlock_count,
                "all_deadlocked": True,
            },
        )
    return MethodResult(
        system=spec.name,
        method=method,
        reward=breakdown.reward,
        wirelength=breakdown.wirelength,
        temperature_c=breakdown.max_temperature_c,
        runtime_s=result.elapsed,
        extra={
            "epochs": result.epochs_run,
            "deadlocks": result.deadlock_count,
        },
    )


class _ResumeSlot:
    """One arm's checkpoint slot in the run store.

    Thin handle passed down into the trainer/annealer layers so they
    stay ignorant of store keys: ``load`` returns the latest in-flight
    snapshot (or ``None``), ``save`` overwrites it atomically, and
    ``clear`` drops it once the arm publishes a final result.
    """

    __slots__ = ("store", "key")

    def __init__(self, store: RunStore, key: str):
        self.store = store
        self.key = key

    def load(self):
        return self.store.load_checkpoint(self.key)

    def save(self, payload) -> None:
        self.store.save_checkpoint(self.key, payload)

    def clear(self) -> None:
        self.store.clear_checkpoint(self.key)


def _run_sa(
    spec,
    reward_calculator,
    budget,
    variant: str,
    time_limit=None,
    resume=None,
    capture=None,
) -> MethodResult:
    if variant == "TAP-2.5D(HotSpot)":
        # The grid solver's multi-RHS path solves every chain's
        # candidate through one factorization per lockstep step, so the
        # HotSpot arm spreads the same total proposal budget over
        # best-of-N chains (exactly N interleaved sequential runs,
        # bitwise) at a fraction of the sequential wall clock.
        n_chains = max(budget.sa_chains, 1)
        n_iterations = max(budget.sa_iterations_hotspot // n_chains, 1)
    else:
        # Fast model: spread the (cheap-evaluation) candidate budget
        # over best-of-N lockstep chains — same total proposal count,
        # one vectorized reward pass per step.
        n_chains = max(budget.sa_chains, 1)
        n_iterations = max(100 * budget.sa_iterations_hotspot // n_chains, 1)
    incremental = False
    if variant == "TAP-2.5D*(FastThermal)" and budget.sa_incremental:
        if n_chains == 1:
            incremental = True
        else:
            _logger.warning(
                "%s: sa_incremental requested but sa_chains=%d; the "
                "incremental delta evaluator only serves single-chain "
                "SA — running the batched full evaluation instead",
                spec.name,
                n_chains,
            )
    if incremental and resume is not None:
        # The incremental delta evaluator carries accumulated running
        # sums (with its own documented ~1e-12 drift and refresh phase)
        # that an SA snapshot does not capture: a resumed leg would
        # rebuild drift-free state and could flip a borderline
        # Metropolis decision.  Rather than break the bitwise-resume
        # guarantee, this arm runs checkpoint-free — the store still
        # skips it entirely once its result is published.
        _logger.warning(
            "%s: %s runs with the incremental evaluator; in-flight "
            "checkpoint/resume is disabled for it (its delta state is "
            "not bitwise-snapshottable) — an interrupted arm restarts "
            "from scratch, a completed arm is still skipped via the "
            "run store",
            spec.name,
            variant,
        )
        resume = None
    if time_limit is not None and resume is not None:
        # A wall-clock-limited anneal stops at a scheduling-noise-
        # dependent iteration, so no run of it — resumed or not — is
        # reproducible; resuming one mid-flight would additionally mix
        # two machines' clocks.  Keep the bitwise-resume invariant
        # clean: the arm runs checkpoint-free (restarting costs at
        # most its time limit) and is still skipped once published.
        _logger.info(
            "%s: %s is wall-clock-limited; running checkpoint-free "
            "(an interrupted arm restarts, a completed arm is skipped "
            "via the run store)",
            spec.name,
            variant,
        )
        resume = None
    config = TAP25DConfig(
        n_iterations=n_iterations,
        time_limit=time_limit,
        seed=budget.seed,
        n_chains=n_chains,
        incremental=incremental,
        checkpoint_every=(
            budget.sa_checkpoint_every if resume is not None else 0
        ),
    )
    placer = TAP25DPlacer(spec.system, reward_calculator, config)
    resume_state = None
    checkpoint_fn = None
    if resume is not None:
        resume_state = resume.load()
        if resume_state is not None:
            _logger.info(
                "%s: %s resuming from iteration %d/%d",
                spec.name,
                variant,
                resume_state["iteration"],
                n_iterations,
            )
        checkpoint_fn = resume.save
    result = placer.run(resume_state=resume_state, checkpoint_fn=checkpoint_fn)
    if capture is not None:
        capture["placement"] = result.placement
    return MethodResult(
        system=spec.name,
        method=variant,
        reward=result.breakdown.reward,
        wirelength=result.breakdown.wirelength,
        temperature_c=result.breakdown.max_temperature_c,
        runtime_s=result.elapsed,
        extra={"evaluations": result.n_evaluations, "sa_chains": n_chains},
    )


def run_method_arm(
    spec: BenchmarkSpec,
    method: str,
    budget: ExperimentBudget,
    cache_dir=None,
    time_limit=None,
    time_matched=None,
    store_dir=None,
) -> MethodResult:
    """One standalone (benchmark x method) arm — the scheduler's job unit.

    Self-contained and deterministic given its arguments (the RNGs seed
    from ``budget.seed``; the thermal tables round-trip bit-exactly
    through the shared disk cache), so the scheduler may run it in any
    worker at any time.  ``time_limit`` carries the measured RL runtime
    into the wall-clock-matched fast-SA arm; ``time_matched`` is
    recorded into the result's ``extra`` for audit.

    ``store_dir`` makes the arm durable: a published result under the
    arm's content-addressed key short-circuits the whole run (belt and
    suspenders — the scheduler already skips keyed jobs with published
    results), an in-flight checkpoint resumes the interrupted run
    bitwise, and the trainer/annealer snapshot their full state into
    the store at the budget's checkpoint cadence while running.
    """
    resume = None
    store = None
    key = None
    if store_dir is not None:
        store = RunStore(store_dir)
        key = arm_store_key(
            spec,
            method,
            budget,
            time_limited=time_limit is not None or bool(time_matched),
        )
        hit, cached = store.fetch(key)
        if hit:
            _logger.info("%s: %s already in run store", spec.name, method)
            return cached
        resume = _ResumeSlot(store, key)
    _logger.info("%s: %s", spec.name, method)
    result = _dispatch_method_arm(
        spec, method, budget, cache_dir, time_limit, time_matched, resume
    )
    if store is not None:
        # Publish from the worker too (the scheduler re-publishes the
        # same bytes in the parent): the result survives even if the
        # parent dies between the arm finishing and collecting it.
        # Publish strictly BEFORE clearing the in-flight checkpoint —
        # a kill between the two then costs at most a redundant
        # checkpoint file, never the completed arm's work.
        store.put(key, result)
        store.clear_checkpoint(key)
    return result


def _dispatch_method_arm(
    spec, method, budget, cache_dir, time_limit, time_matched, resume
) -> MethodResult:
    return dispatch_method_arm(
        spec,
        method,
        budget,
        evaluators=build_evaluators(spec, budget, cache_dir),
        time_limit=time_limit,
        time_matched=time_matched,
        resume=resume,
    )


def dispatch_method_arm(
    spec,
    method,
    budget,
    evaluators,
    *,
    time_limit=None,
    time_matched=None,
    resume=None,
    capture=None,
) -> MethodResult:
    """Run one method arm against pre-built evaluators.

    This is the single code path both the CLI harness (via
    :func:`run_method_arm`, which builds fresh evaluators) and the serve
    layer (which keeps warm ones) execute, so a served placement is
    bitwise identical to the same (spec, method, budget) run offline:
    the thermal tables round-trip bit-exactly through the disk cache and
    every RNG seeds from ``budget.seed``.  ``capture``, when given, is a
    dict that receives the winning ``"placement"`` object — MethodResult
    itself only carries the scalar summary.
    """
    if method == "RLPlanner":
        return _run_rl(
            spec, evaluators["reward_fast"], budget, use_rnd=False,
            resume=resume, capture=capture,
        )
    if method == "RLPlanner(RND)":
        return _run_rl(
            spec, evaluators["reward_fast"], budget, use_rnd=True,
            resume=resume, capture=capture,
        )
    if method == "TAP-2.5D(HotSpot)":
        return _run_sa(
            spec,
            evaluators["reward_solver"],
            budget,
            "TAP-2.5D(HotSpot)",
            resume=resume,
            capture=capture,
        )
    if method == "TAP-2.5D*(FastThermal)":
        result = _run_sa(
            spec,
            evaluators["reward_fast"],
            budget,
            "TAP-2.5D*(FastThermal)",
            time_limit=time_limit,
            resume=resume,
            capture=capture,
        )
        if time_matched is not None:
            result.extra["time_matched"] = bool(time_matched)
            result.extra["time_limit_s"] = time_limit
        return result
    raise ValueError(f"unknown method {method!r}")


def _inject_rl_runtime(dep_id: str, kwargs: dict, done: dict) -> dict:
    """Parent-side hook: feed the measured RL runtime to the fast-SA arm."""
    kwargs["time_limit"] = done[dep_id].runtime_s
    return kwargs


def arm_job_id(spec_name: str, method: str) -> str:
    return f"{spec_name}/{method}"


def as_store(store) -> RunStore | None:
    """Normalize a store argument: ``None``, a path, or a RunStore."""
    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store)


def method_arm_jobs(
    spec: BenchmarkSpec,
    budget: ExperimentBudget,
    cache_dir=None,
    methods: tuple = METHOD_ORDER,
    store=None,
) -> list:
    """Job specs for one benchmark: prewarm + one job per method arm.

    Encodes the harness's two structural dependencies: every arm needs
    the benchmark's thermal tables (prewarm job), and the wall-clock-
    matched ``TAP-2.5D*(FastThermal)`` arm needs the measured runtime of
    the RL arm (``RLPlanner``, falling back to ``RLPlanner(RND)``) when
    ``budget.sa_time_matched`` is on.  If time matching is requested but
    no RL arm is scheduled, the arm runs without a time limit — loudly,
    and flagged ``time_matched: False`` in its result ``extra``.

    With a run ``store`` each arm job also carries its content-addressed
    ``store_key`` (so the scheduler skips published arms) and the store
    root (so the worker checkpoints/resumes in-flight state).  The
    prewarm job stays unkeyed — the thermal-table cache is already
    durable on its own — and is dropped entirely when every arm's
    result is already published, so a fully cached sweep does zero
    characterization work.
    """
    ordered = [m for m in METHOD_ORDER if m in methods]
    unknown = set(methods) - set(METHOD_ORDER)
    if unknown:
        raise ValueError(f"unknown methods {sorted(unknown)!r}")
    store = as_store(store)
    prewarm_id = f"{spec.name}/prewarm"
    jobs = []
    rl_dep = next((m for m in METHOD_ORDER[:2] if m in ordered), None)
    for method in ordered:
        kwargs = dict(
            spec=spec, method=method, budget=budget, cache_dir=cache_dir
        )
        if store is not None:
            kwargs["store_dir"] = store.root
        needs = (prewarm_id,)
        inject = None
        if method == "TAP-2.5D*(FastThermal)" and budget.sa_time_matched:
            # time_matched lands in the result's extra only when
            # matching was *requested*: True when the RL dependency
            # feeds a limit, False for the pathological methods-subset
            # case.  With sa_time_matched off nothing is recorded —
            # deliberately unmatched runs are not audit findings.
            if rl_dep is not None:
                dep_id = arm_job_id(spec.name, rl_dep)
                needs = (prewarm_id, dep_id)
                inject = functools.partial(_inject_rl_runtime, dep_id)
                kwargs["time_matched"] = True
            else:
                _logger.warning(
                    "%s: TAP-2.5D*(FastThermal) is wall-clock-matched "
                    "to RL training, but no RLPlanner arm is scheduled "
                    "(methods=%r) — running WITHOUT a time limit and "
                    "recording time_matched=False",
                    spec.name,
                    tuple(methods),
                )
                kwargs["time_matched"] = False
        jobs.append(
            JobSpec(
                job_id=arm_job_id(spec.name, method),
                fn=run_method_arm,
                kwargs=kwargs,
                needs=needs,
                inject=inject,
                # Mirrors the worker-side key in run_method_arm: the
                # time-matched arm's limit arrives by injection, but
                # whether it WILL be limited is known here.
                store_key=(
                    arm_store_key(
                        spec,
                        method,
                        budget,
                        time_limited=bool(kwargs.get("time_matched")),
                    )
                    if store is not None
                    else None
                ),
            )
        )
    if store is not None and all(
        job.store_key is not None and store.contains(job.store_key)
        for job in jobs
    ):
        # Every arm is already published: don't pay for thermal
        # characterization no one will consume.  Arms keep only their
        # non-prewarm edges (they load tables themselves in the — here
        # unreachable — event a result vanishes before dispatch).
        for job in jobs:
            job.needs = tuple(dep for dep in job.needs if dep != prewarm_id)
        return jobs
    return [
        JobSpec(
            job_id=prewarm_id,
            fn=prewarm_thermal_tables,
            kwargs=dict(spec=spec, budget=budget, cache_dir=cache_dir),
        )
    ] + jobs


def collect_arm_results(outcome: dict, spec_name: str, methods: tuple) -> list:
    """Pick one benchmark's MethodResults out of a scheduler outcome.

    Arms absent from ``outcome`` (quarantined or skipped under
    ``keep_going``) are left out rather than raising — the surviving
    arms still report.
    """
    return [
        outcome[arm_job_id(spec_name, method)]
        for method in METHOD_ORDER
        if method in methods and arm_job_id(spec_name, method) in outcome
    ]


def run_all_methods(
    spec: BenchmarkSpec,
    budget: ExperimentBudget | None = None,
    cache_dir=None,
    methods: tuple = METHOD_ORDER,
    jobs: int = 1,
    store=None,
    policy=None,
    job_timeout: float | None = None,
    keep_going: bool = False,
    report=None,
) -> list:
    """Run the requested methods on one benchmark; returns MethodResults.

    ``jobs=1`` (default) preserves the sequential harness bit for bit;
    ``jobs=N`` fans the independent arms over a process pool (the
    time-matched arm still waits for the RL arm it is matched to).
    ``store`` (a :class:`~repro.store.RunStore` or its root path) makes
    the run resumable: published arms are skipped, in-flight arms
    restart from their latest checkpoint.

    ``policy``/``job_timeout``/``keep_going``/``report`` are the
    :func:`repro.parallel.run_jobs` fault-tolerance knobs: transient
    worker failures retry with backoff, stragglers past ``job_timeout``
    are killed and retried, and under ``keep_going`` a permanently
    failing arm is quarantined (recorded in ``report``, absent from the
    returned results) while the other arms complete.
    """
    budget = budget or ExperimentBudget()
    store = as_store(store)
    job_specs = method_arm_jobs(
        spec, budget, cache_dir=cache_dir, methods=methods, store=store
    )
    outcome = run_jobs(
        job_specs,
        jobs=jobs,
        store=store,
        policy=policy,
        job_timeout=job_timeout,
        keep_going=keep_going,
        report=report,
    )
    return collect_arm_results(outcome, spec.name, methods)
