"""Optimizers and gradient utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 3e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (p.grad**2)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        self._t = state["t"]
        for target, source in zip(self._m, state["m"]):
            target[...] = source
        for target, source in zip(self._v, state["v"]):
            target[...] = source
