"""Chiplet system and placement containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.chiplet.chiplet import Chiplet
from repro.geometry import Rect

__all__ = ["Interposer", "ChipletSystem", "Placement"]


@dataclass(frozen=True)
class Interposer:
    """The passive carrier the chiplets sit on.

    Attributes
    ----------
    width, height:
        Usable placement region in mm (origin at lower-left).
    min_spacing:
        Minimum boundary-to-boundary clearance between chiplets in mm
        (assembly design rule; TAP-2.5D uses a comparable keep-out).
    """

    width: float
    height: float
    min_spacing: float = 0.1

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("interposer needs positive size")
        if self.min_spacing < 0:
            raise ValueError("min_spacing cannot be negative")

    @property
    def bounds(self) -> Rect:
        return Rect(0.0, 0.0, self.width, self.height)

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclass(frozen=True)
class ChipletSystem:
    """A named 2.5D design: interposer + chiplets + netlist.

    The container is immutable; placement state lives in
    :class:`Placement` so the same system can be explored concurrently.
    """

    name: str
    interposer: Interposer
    chiplets: tuple
    nets: tuple = ()
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        names = [c.name for c in self.chiplets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate chiplet names in system {self.name!r}")
        known = set(names)
        for net in self.nets:
            for end in net.endpoints():
                if end not in known:
                    raise ValueError(
                        f"net endpoint {end!r} is not a chiplet of {self.name!r}"
                    )
        # Name lookup table: chiplet() sits on every footprint/validation
        # hot path, so a linear scan per call adds up fast.  The dataclass
        # is frozen, hence the direct __setattr__ (the map is derived
        # state, not a field).
        object.__setattr__(
            self, "_chiplets_by_name", {c.name: c for c in self.chiplets}
        )

    # -- lookups ---------------------------------------------------------

    @property
    def n_chiplets(self) -> int:
        return len(self.chiplets)

    @property
    def chiplet_names(self) -> tuple:
        return tuple(c.name for c in self.chiplets)

    def chiplet(self, name: str) -> Chiplet:
        try:
            return self._chiplets_by_name[name]
        except KeyError:
            raise KeyError(
                f"no chiplet {name!r} in system {self.name!r}"
            ) from None

    def nets_of(self, chiplet_name: str) -> tuple:
        """All nets incident to the named chiplet."""
        return tuple(n for n in self.nets if n.touches(chiplet_name))

    def wires_between(self, a: str, b: str) -> int:
        """Total wire count between two chiplets across all nets."""
        return sum(
            n.wires for n in self.nets if {a, b} == {n.src, n.dst}
        )

    # -- aggregates --------------------------------------------------------

    @property
    def total_power(self) -> float:
        """Sum of chiplet powers in W."""
        return sum(c.power for c in self.chiplets)

    @property
    def total_chiplet_area(self) -> float:
        """Sum of footprints in mm^2."""
        return sum(c.area for c in self.chiplets)

    @property
    def utilization(self) -> float:
        """Chiplet area over interposer area (a packing-difficulty proxy)."""
        return self.total_chiplet_area / self.interposer.area

    @property
    def total_wires(self) -> int:
        return sum(n.wires for n in self.nets)

    def connectivity_graph(self) -> nx.Graph:
        """Undirected chiplet graph with ``wires`` edge weights.

        Parallel nets between the same pair are merged by summing wires.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.chiplet_names)
        for net in self.nets:
            if graph.has_edge(net.src, net.dst):
                graph[net.src][net.dst]["wires"] += net.wires
            else:
                graph.add_edge(net.src, net.dst, wires=net.wires)
        return graph

    def placement_order(self) -> tuple:
        """Canonical sequential-placement order used by agent and env.

        Descending area, ties broken by descending power then name: big
        hot dies first, matching the intuition (and TAP-2.5D's practice)
        that anchors should be committed before fillers.
        """
        return tuple(
            c.name
            for c in sorted(
                self.chiplets, key=lambda c: (-c.area, -c.power, c.name)
            )
        )


@dataclass
class Placement:
    """Mutable mapping of chiplet name -> (x, y, rotated).

    ``(x, y)`` is the lower-left corner of the (possibly rotated)
    footprint in interposer coordinates.
    """

    system: ChipletSystem
    positions: dict = field(default_factory=dict)

    def place(self, name: str, x: float, y: float, rotated: bool = False) -> None:
        """Record a position for a chiplet (overwrites an existing one)."""
        self.system.chiplet(name)  # raises KeyError for unknown names
        self.positions[name] = (float(x), float(y), bool(rotated))

    def unplace(self, name: str) -> None:
        self.positions.pop(name, None)

    def is_placed(self, name: str) -> bool:
        return name in self.positions

    @property
    def placed_names(self) -> tuple:
        return tuple(self.positions.keys())

    @property
    def is_complete(self) -> bool:
        return len(self.positions) == self.system.n_chiplets

    def footprint(self, name: str) -> Rect:
        """Footprint rectangle of a placed chiplet."""
        x, y, rotated = self.positions[name]
        return self.system.chiplet(name).footprint(x, y, rotated)

    def footprints(self) -> dict:
        """Name -> footprint for every placed chiplet."""
        return {name: self.footprint(name) for name in self.positions}

    def copy(self) -> "Placement":
        return Placement(self.system, dict(self.positions))

    def as_dict(self) -> dict:
        """JSON-friendly snapshot of the positions."""
        return {
            name: {"x": x, "y": y, "rotated": rot}
            for name, (x, y, rot) in self.positions.items()
        }

    @classmethod
    def from_dict(cls, system: ChipletSystem, data: dict) -> "Placement":
        placement = cls(system)
        for name, pos in data.items():
            placement.place(name, pos["x"], pos["y"], pos.get("rotated", False))
        return placement
