"""Tests for system JSON I/O and placement validation."""

import pytest

from repro.chiplet import (
    Chiplet,
    ChipletSystem,
    Interposer,
    Net,
    Placement,
    ValidationError,
    load_system,
    save_system,
    system_from_dict,
    system_to_dict,
    validate_placement,
    validate_system,
)
from repro.chiplet.validate import placement_violations


@pytest.fixture
def system():
    return ChipletSystem(
        "io-demo",
        Interposer(30, 30, min_spacing=0.5),
        (
            Chiplet("a", 10, 10, 50.0, kind="cpu", metadata={"node": "7nm"}),
            Chiplet("b", 5, 8, 10.0, rotatable=False),
        ),
        (Net("a", "b", wires=128, name="ab"),),
        metadata={"source": "unit-test"},
    )


class TestIO:
    def test_dict_roundtrip(self, system):
        data = system_to_dict(system)
        back = system_from_dict(data)
        assert back == system

    def test_file_roundtrip(self, system, tmp_path):
        path = tmp_path / "system.json"
        save_system(system, path)
        back = load_system(path)
        assert back == system
        assert back.chiplet("a").metadata["node"] == "7nm"

    def test_unsupported_version(self, system):
        data = system_to_dict(system)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            system_from_dict(data)

    def test_missing_optionals_tolerated(self):
        data = {
            "name": "minimal",
            "interposer": {"width": 10, "height": 10},
            "chiplets": [{"name": "x", "width": 2, "height": 2, "power": 1.0}],
        }
        sys_ = system_from_dict(data)
        assert sys_.nets == ()
        assert sys_.interposer.min_spacing == 0.1


class TestValidateSystem:
    def test_valid_system_passes(self, system):
        validate_system(system)

    def test_oversized_chiplet_fails(self):
        sys_ = ChipletSystem(
            "big", Interposer(10, 10), (Chiplet("x", 12, 5, 1.0),)
        )
        # 12x5 fits rotated (5x12? no: 12 > 10 both ways) -> must fail
        with pytest.raises(ValidationError):
            validate_system(sys_)

    def test_rotated_fit_is_accepted(self):
        sys_ = ChipletSystem(
            "rot", Interposer(10, 20), (Chiplet("x", 15, 5, 1.0),)
        )
        validate_system(sys_)  # fits as 5x15

    def test_overpacked_system_fails(self):
        chiplets = tuple(
            Chiplet(f"c{i}", 6, 6, 1.0) for i in range(4)
        )  # 144 mm^2 on 100 mm^2
        sys_ = ChipletSystem("full", Interposer(10, 10), chiplets)
        with pytest.raises(ValidationError):
            validate_system(sys_)


class TestValidatePlacement:
    def test_legal_placement_passes(self, system):
        p = Placement(system)
        p.place("a", 0, 0)
        p.place("b", 15, 15)
        validate_placement(p)

    def test_incomplete_flagged(self, system):
        p = Placement(system)
        p.place("a", 0, 0)
        with pytest.raises(ValidationError, match="unplaced"):
            validate_placement(p)
        validate_placement(p, require_complete=False)

    def test_out_of_bounds_flagged(self, system):
        p = Placement(system)
        p.place("a", 25, 0)  # 10 wide on a 30 interposer
        p.place("b", 0, 15)
        with pytest.raises(ValidationError, match="bounds"):
            validate_placement(p)

    def test_overlap_flagged(self, system):
        p = Placement(system)
        p.place("a", 0, 0)
        p.place("b", 5, 5)
        with pytest.raises(ValidationError, match="overlaps"):
            validate_placement(p)

    def test_spacing_violation_flagged(self, system):
        p = Placement(system)
        p.place("a", 0, 0)
        p.place("b", 10.2, 0)  # gap 0.2 < min_spacing 0.5
        with pytest.raises(ValidationError, match="min_spacing"):
            validate_placement(p)

    def test_spacing_exact_boundary_ok(self, system):
        p = Placement(system)
        p.place("a", 0, 0)
        p.place("b", 10.5, 0)
        validate_placement(p)

    def test_violations_list_collects_everything(self, system):
        p = Placement(system)
        p.place("a", 25, 25)  # out of bounds both ways
        problems = placement_violations(p, require_complete=True)
        assert len(problems) >= 2
