"""Shared machinery for the Table I / Table III comparisons.

Four methods, as in the paper:

* ``RLPlanner``          — PPO agent, fast thermal model in the loop
* ``RLPlanner(RND)``     — same, plus the RND exploration bonus
* ``TAP-2.5D(HotSpot)``  — SA baseline evaluating with the grid solver
* ``TAP-2.5D*(FastThermal)`` — SA baseline on the fast thermal model,
  wall-clock-matched to the RL training budget (the paper's asterisk)

Budgets are scaled-down by default so the whole suite runs in minutes;
``ExperimentBudget.paper_scale()`` restores the paper's 600-epoch regime.

Every (benchmark x method) arm is a standalone, picklable job
(:func:`run_method_arm`) scheduled through :mod:`repro.parallel`:
``jobs=1`` executes them in process and in submission order — bit-for-
bit the pre-scheduler sequential harness, pinned by
``tests/data/golden_experiments.json`` — while ``jobs=N`` fans
independent arms over a process pool.  Two structural edges make that
safe:

* a per-benchmark *prewarm* job characterizes (or loads) the thermal
  tables before any arm starts, so pool workers share one on-disk
  cache entry instead of racing to recompute it (the cache itself is
  file-locked and atomically written as a second line of defense);
* the wall-clock-matched ``TAP-2.5D*(FastThermal)`` arm declares a
  dependency on its benchmark's RL arm and receives the *measured* RL
  runtime through the scheduler's parent-side injection hook, exactly
  as the sequential path threads it.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from pathlib import Path

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.baselines import TAP25DConfig, TAP25DPlacer
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.report import MethodResult
from repro.parallel import JobSpec, run_jobs
from repro.reward import RewardCalculator
from repro.rl import PPOConfig, RNDConfig
from repro.systems import BenchmarkSpec
from repro.thermal import FastThermalModel, GridThermalSolver
from repro.thermal.characterize import load_or_characterize
from repro.utils import get_logger

__all__ = [
    "ExperimentBudget",
    "build_evaluators",
    "method_arm_jobs",
    "prewarm_thermal_tables",
    "run_all_methods",
    "run_method_arm",
]

_logger = get_logger("experiments.runner")

DEFAULT_CACHE_DIR = Path(".cache/thermal_tables")

METHOD_ORDER = (
    "RLPlanner",
    "RLPlanner(RND)",
    "TAP-2.5D(HotSpot)",
    "TAP-2.5D*(FastThermal)",
)


@dataclass(frozen=True)
class ExperimentBudget:
    """Knobs that trade fidelity for runtime.

    The defaults regenerate table *shapes* in minutes on a laptop CPU.
    """

    rl_epochs: int = 30
    episodes_per_epoch: int = 8
    grid_size: int = 24
    sa_iterations_hotspot: int = 250
    sa_time_matched: bool = True
    position_samples: tuple = (7, 7)
    seed: int = 0
    # Rollout batch width for RL episode collection (1 = the original
    # sequential engine; >1 = lockstep batched collection).  Batched
    # collection is the default since PR 2; the batched engine's
    # per-episode RNG streams produce different (equally valid)
    # trajectories than the golden-pinned sequential engine, which
    # remains available via rollout_batch_size=1.
    rollout_batch_size: int = 16
    # Lockstep annealing chains for both SA baselines: best-of-N chains
    # with one batched reward pass per step.  The fast-thermal arm
    # (TAP-2.5D*) vectorizes its table lookups across the chains; the
    # HotSpot arm (TAP-2.5D) solves all chains' candidates as one
    # multi-RHS block through a single factorization per step
    # (bitwise identical to sequential chains), so extra chains
    # amortize — rather than multiply — its dominant factorization
    # cost.  Both arms spread their total proposal budget over the
    # chains, keeping evaluation counts comparable across chain counts.
    sa_chains: int = 16
    # Single-chain fast-thermal SA may use the incremental O(moved x n)
    # delta evaluator (FastThermalModel(..., incremental=True)).  Only
    # effective when sa_chains == 1 — the delta path exploits the
    # move locality of one scalar evaluate() chain.
    sa_incremental: bool = False
    # Keep the grid solver's splu factorization alive across SA steps
    # in the HotSpot arm (the homogeneous conductance matrix is
    # placement-independent).  Off by default: the paper's comparison
    # charges the HotSpot arm a fresh "run the HotSpot binary" cost per
    # lockstep step, which this experiment mode would remove.
    hotspot_reuse_factorization: bool = False

    @classmethod
    def paper_scale(cls) -> "ExperimentBudget":
        """The paper's regime (hours of CPU time)."""
        return cls(
            rl_epochs=600,
            episodes_per_epoch=16,
            grid_size=32,
            sa_iterations_hotspot=2000,
        )


def _spec_sizes(spec: BenchmarkSpec) -> list:
    """Die sizes (including rotations) needing characterization."""
    sizes = []
    for chiplet in spec.system.chiplets:
        sizes.append((chiplet.width, chiplet.height))
        if chiplet.rotatable:
            sizes.append((chiplet.height, chiplet.width))
    return sizes


def prewarm_thermal_tables(
    spec: BenchmarkSpec, budget: ExperimentBudget, cache_dir=None
) -> str:
    """Job function: characterize (or load) one benchmark's tables.

    Runs before any of the benchmark's method arms so pool workers find
    the tables on disk instead of recomputing them per arm; returns the
    cache fingerprint.  Prewarm jobs for different benchmarks are
    independent, so a pool parallelizes characterization itself.
    """
    cache_dir = DEFAULT_CACHE_DIR if cache_dir is None else Path(cache_dir)
    tables = load_or_characterize(
        spec.system.interposer,
        _spec_sizes(spec),
        spec.thermal_config,
        position_samples=budget.position_samples,
        cache_dir=cache_dir,
    )
    return tables.fingerprint


def build_evaluators(spec: BenchmarkSpec, budget: ExperimentBudget, cache_dir=None):
    """Characterize tables and build both thermal evaluators + rewards."""
    cache_dir = DEFAULT_CACHE_DIR if cache_dir is None else Path(cache_dir)
    tables = load_or_characterize(
        spec.system.interposer,
        _spec_sizes(spec),
        spec.thermal_config,
        position_samples=budget.position_samples,
        cache_dir=cache_dir,
    )
    fast_model = FastThermalModel(tables, spec.thermal_config)
    # Fresh factorization per call = HotSpot-like per-evaluation cost.
    # Multi-chain SA still amortizes: solve_footprints_many factorizes
    # once per batched call (one lockstep step), not once per candidate.
    # ``hotspot_reuse_factorization`` additionally keeps the LU alive
    # across steps (experiment mode; not HotSpot-cost-faithful).
    solver = GridThermalSolver(
        spec.system.interposer,
        spec.thermal_config,
        reuse_factorization=budget.hotspot_reuse_factorization,
    )
    reward_fast = RewardCalculator(fast_model, spec.reward_config)
    reward_solver = RewardCalculator(solver, spec.reward_config)
    return {
        "fast_model": fast_model,
        "solver": solver,
        "reward_fast": reward_fast,
        "reward_solver": reward_solver,
        "tables": tables,
    }


def _run_rl(spec, reward_calculator, budget, use_rnd: bool) -> MethodResult:
    env = FloorplanEnv(
        spec.system,
        reward_calculator,
        EnvConfig(grid_size=budget.grid_size),
    )
    trainer = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=budget.rl_epochs,
            episodes_per_epoch=budget.episodes_per_epoch,
            batch_size=budget.rollout_batch_size,
            seed=budget.seed,
            use_rnd=use_rnd,
            rnd=RNDConfig(bonus_scale=0.5),
            ppo=PPOConfig(),
            log_every=0,
        ),
    )
    result = trainer.train()
    breakdown = result.best_breakdown
    method = "RLPlanner(RND)" if use_rnd else "RLPlanner"
    if breakdown is None:
        # Every episode deadlocked (possible on tight packings at very
        # small budgets); report the deadlock penalty honestly.
        return MethodResult(
            system=spec.name,
            method=method,
            reward=result.best_reward,
            wirelength=float("nan"),
            temperature_c=float("nan"),
            runtime_s=result.elapsed,
            extra={
                "epochs": result.epochs_run,
                "deadlocks": result.deadlock_count,
                "all_deadlocked": True,
            },
        )
    return MethodResult(
        system=spec.name,
        method=method,
        reward=breakdown.reward,
        wirelength=breakdown.wirelength,
        temperature_c=breakdown.max_temperature_c,
        runtime_s=result.elapsed,
        extra={
            "epochs": result.epochs_run,
            "deadlocks": result.deadlock_count,
        },
    )


def _run_sa(
    spec, reward_calculator, budget, variant: str, time_limit=None
) -> MethodResult:
    if variant == "TAP-2.5D(HotSpot)":
        # The grid solver's multi-RHS path solves every chain's
        # candidate through one factorization per lockstep step, so the
        # HotSpot arm spreads the same total proposal budget over
        # best-of-N chains (exactly N interleaved sequential runs,
        # bitwise) at a fraction of the sequential wall clock.
        n_chains = max(budget.sa_chains, 1)
        n_iterations = max(budget.sa_iterations_hotspot // n_chains, 1)
    else:
        # Fast model: spread the (cheap-evaluation) candidate budget
        # over best-of-N lockstep chains — same total proposal count,
        # one vectorized reward pass per step.
        n_chains = max(budget.sa_chains, 1)
        n_iterations = max(100 * budget.sa_iterations_hotspot // n_chains, 1)
    incremental = False
    if variant == "TAP-2.5D*(FastThermal)" and budget.sa_incremental:
        if n_chains == 1:
            incremental = True
        else:
            _logger.warning(
                "%s: sa_incremental requested but sa_chains=%d; the "
                "incremental delta evaluator only serves single-chain "
                "SA — running the batched full evaluation instead",
                spec.name,
                n_chains,
            )
    config = TAP25DConfig(
        n_iterations=n_iterations,
        time_limit=time_limit,
        seed=budget.seed,
        n_chains=n_chains,
        incremental=incremental,
    )
    placer = TAP25DPlacer(spec.system, reward_calculator, config)
    result = placer.run()
    return MethodResult(
        system=spec.name,
        method=variant,
        reward=result.breakdown.reward,
        wirelength=result.breakdown.wirelength,
        temperature_c=result.breakdown.max_temperature_c,
        runtime_s=result.elapsed,
        extra={"evaluations": result.n_evaluations, "sa_chains": n_chains},
    )


def run_method_arm(
    spec: BenchmarkSpec,
    method: str,
    budget: ExperimentBudget,
    cache_dir=None,
    time_limit=None,
    time_matched=None,
) -> MethodResult:
    """One standalone (benchmark x method) arm — the scheduler's job unit.

    Self-contained and deterministic given its arguments (the RNGs seed
    from ``budget.seed``; the thermal tables round-trip bit-exactly
    through the shared disk cache), so the scheduler may run it in any
    worker at any time.  ``time_limit`` carries the measured RL runtime
    into the wall-clock-matched fast-SA arm; ``time_matched`` is
    recorded into the result's ``extra`` for audit.
    """
    _logger.info("%s: %s", spec.name, method)
    evaluators = build_evaluators(spec, budget, cache_dir)
    if method == "RLPlanner":
        return _run_rl(spec, evaluators["reward_fast"], budget, use_rnd=False)
    if method == "RLPlanner(RND)":
        return _run_rl(spec, evaluators["reward_fast"], budget, use_rnd=True)
    if method == "TAP-2.5D(HotSpot)":
        return _run_sa(
            spec, evaluators["reward_solver"], budget, "TAP-2.5D(HotSpot)"
        )
    if method == "TAP-2.5D*(FastThermal)":
        result = _run_sa(
            spec,
            evaluators["reward_fast"],
            budget,
            "TAP-2.5D*(FastThermal)",
            time_limit=time_limit,
        )
        if time_matched is not None:
            result.extra["time_matched"] = bool(time_matched)
            result.extra["time_limit_s"] = time_limit
        return result
    raise ValueError(f"unknown method {method!r}")


def _inject_rl_runtime(dep_id: str, kwargs: dict, done: dict) -> dict:
    """Parent-side hook: feed the measured RL runtime to the fast-SA arm."""
    kwargs["time_limit"] = done[dep_id].runtime_s
    return kwargs


def arm_job_id(spec_name: str, method: str) -> str:
    return f"{spec_name}/{method}"


def method_arm_jobs(
    spec: BenchmarkSpec,
    budget: ExperimentBudget,
    cache_dir=None,
    methods: tuple = METHOD_ORDER,
) -> list:
    """Job specs for one benchmark: prewarm + one job per method arm.

    Encodes the harness's two structural dependencies: every arm needs
    the benchmark's thermal tables (prewarm job), and the wall-clock-
    matched ``TAP-2.5D*(FastThermal)`` arm needs the measured runtime of
    the RL arm (``RLPlanner``, falling back to ``RLPlanner(RND)``) when
    ``budget.sa_time_matched`` is on.  If time matching is requested but
    no RL arm is scheduled, the arm runs without a time limit — loudly,
    and flagged ``time_matched: False`` in its result ``extra``.
    """
    ordered = [m for m in METHOD_ORDER if m in methods]
    unknown = set(methods) - set(METHOD_ORDER)
    if unknown:
        raise ValueError(f"unknown methods {sorted(unknown)!r}")
    prewarm_id = f"{spec.name}/prewarm"
    jobs = [
        JobSpec(
            job_id=prewarm_id,
            fn=prewarm_thermal_tables,
            kwargs=dict(spec=spec, budget=budget, cache_dir=cache_dir),
        )
    ]
    rl_dep = next((m for m in METHOD_ORDER[:2] if m in ordered), None)
    for method in ordered:
        kwargs = dict(
            spec=spec, method=method, budget=budget, cache_dir=cache_dir
        )
        needs = (prewarm_id,)
        inject = None
        if method == "TAP-2.5D*(FastThermal)" and budget.sa_time_matched:
            # time_matched lands in the result's extra only when
            # matching was *requested*: True when the RL dependency
            # feeds a limit, False for the pathological methods-subset
            # case.  With sa_time_matched off nothing is recorded —
            # deliberately unmatched runs are not audit findings.
            if rl_dep is not None:
                dep_id = arm_job_id(spec.name, rl_dep)
                needs = (prewarm_id, dep_id)
                inject = functools.partial(_inject_rl_runtime, dep_id)
                kwargs["time_matched"] = True
            else:
                _logger.warning(
                    "%s: TAP-2.5D*(FastThermal) is wall-clock-matched "
                    "to RL training, but no RLPlanner arm is scheduled "
                    "(methods=%r) — running WITHOUT a time limit and "
                    "recording time_matched=False",
                    spec.name,
                    tuple(methods),
                )
                kwargs["time_matched"] = False
        jobs.append(
            JobSpec(
                job_id=arm_job_id(spec.name, method),
                fn=run_method_arm,
                kwargs=kwargs,
                needs=needs,
                inject=inject,
            )
        )
    return jobs


def collect_arm_results(outcome: dict, spec_name: str, methods: tuple) -> list:
    """Pick one benchmark's MethodResults out of a scheduler outcome."""
    return [
        outcome[arm_job_id(spec_name, method)]
        for method in METHOD_ORDER
        if method in methods
    ]


def run_all_methods(
    spec: BenchmarkSpec,
    budget: ExperimentBudget | None = None,
    cache_dir=None,
    methods: tuple = METHOD_ORDER,
    jobs: int = 1,
) -> list:
    """Run the requested methods on one benchmark; returns MethodResults.

    ``jobs=1`` (default) preserves the sequential harness bit for bit;
    ``jobs=N`` fans the independent arms over a process pool (the
    time-matched arm still waits for the RL arm it is matched to).
    """
    budget = budget or ExperimentBudget()
    job_specs = method_arm_jobs(spec, budget, cache_dir=cache_dir, methods=methods)
    outcome = run_jobs(job_specs, jobs=jobs)
    return collect_arm_results(outcome, spec.name, methods)
