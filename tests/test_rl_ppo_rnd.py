"""Tests for PPO and RND on small synthetic problems."""

import numpy as np
import pytest

from repro.nn import Adam, Linear, MaskedCategorical, Module, Tensor
from repro.rl import (
    Episode,
    PPOConfig,
    PPOUpdater,
    RNDConfig,
    RandomNetworkDistillation,
    RolloutBuffer,
)


class TinyPolicy(Module):
    """Linear actor-critic over flat observations (for bandit tests)."""

    def __init__(self, obs_dim, n_actions, rng):
        self.policy = Linear(obs_dim, n_actions, gain=0.01, rng=rng)
        self.value = Linear(obs_dim, 1, gain=1.0, rng=rng)

    def evaluate(self, observations, masks):
        obs = Tensor(np.asarray(observations, dtype=np.float64).reshape(
            len(observations), -1
        ))
        logits = self.policy(obs)
        values = self.value(obs).reshape(-1)
        return MaskedCategorical(logits, np.asarray(masks, bool)), values


def _bandit_rollout(network, rng, n_episodes=64, n_actions=4):
    """One-step bandit: action k yields reward -|k - 2| (best action 2)."""
    buffer = RolloutBuffer(gamma=1.0, gae_lambda=1.0)
    obs = np.ones((1, 1, 1))
    mask = np.ones(n_actions, bool)
    for _ in range(n_episodes):
        dist, values = network.evaluate(obs[None], mask[None])
        action = int(dist.sample(rng)[0])
        log_prob = float(dist.log_prob(np.array([action])).data[0])
        episode = Episode()
        episode.add_step(
            obs, mask, action, log_prob, float(values.data[0]),
            reward=-abs(action - 2),
        )
        buffer.add_episode(episode)
    return buffer.compute()


class TestPPOConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PPOConfig(clip_ratio=0.0)
        with pytest.raises(ValueError):
            PPOConfig(update_epochs=0)


class TestPPOUpdater:
    def test_learns_bandit(self):
        rng = np.random.default_rng(0)
        network = TinyPolicy(1, 4, rng)
        optimizer = Adam(network.parameters(), lr=0.02)
        updater = PPOUpdater(network, optimizer, PPOConfig(minibatch_size=32))
        for _ in range(30):
            batch = _bandit_rollout(network, rng)
            updater.update(batch, rng)
        dist, _ = network.evaluate(np.ones((1, 1, 1, 1)), np.ones((1, 4), bool))
        assert dist.probs[0].argmax() == 2
        assert dist.probs[0, 2] > 0.6

    def test_update_stats_keys(self):
        rng = np.random.default_rng(1)
        network = TinyPolicy(1, 4, rng)
        updater = PPOUpdater(network, Adam(network.parameters(), lr=1e-3))
        batch = _bandit_rollout(network, rng, n_episodes=16)
        stats = updater.update(batch, rng)
        for key in (
            "policy_loss",
            "value_loss",
            "entropy",
            "approx_kl",
            "clip_fraction",
            "n_updates",
        ):
            assert key in stats
        assert stats["n_updates"] >= 1

    def test_value_head_fits_returns(self):
        rng = np.random.default_rng(2)
        network = TinyPolicy(1, 4, rng)
        optimizer = Adam(network.parameters(), lr=0.05)
        # Disable KL early stop so the value head keeps training.
        updater = PPOUpdater(
            network, optimizer, PPOConfig(target_kl=None, update_epochs=8)
        )
        for _ in range(30):
            batch = _bandit_rollout(network, rng, n_episodes=32)
            updater.update(batch, rng)
        _, values = network.evaluate(
            np.ones((1, 1, 1, 1)), np.ones((1, 4), bool)
        )
        # Optimal policy reward is 0; trained value should approach it
        # from below as the policy concentrates.
        assert values.data[0] > -1.5

    def test_kl_early_stop_triggers_with_huge_lr(self):
        rng = np.random.default_rng(3)
        network = TinyPolicy(1, 4, rng)
        optimizer = Adam(network.parameters(), lr=5.0)
        updater = PPOUpdater(
            network, optimizer, PPOConfig(target_kl=0.01, update_epochs=10)
        )
        batch = _bandit_rollout(network, rng, n_episodes=32)
        stats = updater.update(batch, rng)
        assert stats["early_stopped"] or stats["n_updates"] < 10 * 1


class TestRND:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RNDConfig(embed_dim=0)
        with pytest.raises(ValueError):
            RNDConfig(learning_rate=0.0)

    def test_bonus_shape_and_positivity(self):
        rnd = RandomNetworkDistillation(8, rng=np.random.default_rng(0))
        obs = np.random.default_rng(1).normal(size=(5, 8))
        bonus = rnd.intrinsic_reward(obs)
        assert bonus.shape == (5,)
        assert (bonus >= 0).all()

    def test_wrong_dim_rejected(self):
        rnd = RandomNetworkDistillation(8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            rnd.intrinsic_reward(np.zeros((2, 9)))

    def test_training_reduces_error_on_seen_states(self):
        rng = np.random.default_rng(0)
        rnd = RandomNetworkDistillation(
            6, RNDConfig(learning_rate=1e-3), rng=rng
        )
        seen = rng.normal(size=(64, 6))
        before = rnd.raw_bonus(seen, update_stats=True).mean()
        for _ in range(200):
            rnd.update(seen)
        after = rnd.raw_bonus(seen, update_stats=False).mean()
        assert after < before * 0.5

    def test_novel_states_scored_higher_than_seen(self):
        rng = np.random.default_rng(1)
        rnd = RandomNetworkDistillation(
            6, RNDConfig(learning_rate=1e-3), rng=rng
        )
        seen = rng.normal(size=(64, 6))
        rnd.intrinsic_reward(seen)  # prime the normalizers
        for _ in range(300):
            rnd.update(seen)
        novel = rng.normal(loc=5.0, size=(64, 6))
        seen_bonus = rnd.raw_bonus(seen, update_stats=False).mean()
        novel_bonus = rnd.raw_bonus(novel, update_stats=False).mean()
        assert novel_bonus > seen_bonus

    def test_target_is_frozen(self):
        rnd = RandomNetworkDistillation(4, rng=np.random.default_rng(0))
        target_params = [p.data.copy() for p in rnd.target.parameters()]
        obs = np.random.default_rng(2).normal(size=(16, 4))
        rnd.intrinsic_reward(obs)
        for _ in range(5):
            rnd.update(obs)
        for before, param in zip(target_params, rnd.target.parameters()):
            np.testing.assert_array_equal(before, param.data)

    def test_bonus_scale(self):
        rng = np.random.default_rng(3)
        obs = rng.normal(size=(32, 4))
        rnd1 = RandomNetworkDistillation(
            4, RNDConfig(bonus_scale=1.0), rng=np.random.default_rng(42)
        )
        rnd2 = RandomNetworkDistillation(
            4, RNDConfig(bonus_scale=2.0), rng=np.random.default_rng(42)
        )
        b1 = rnd1.intrinsic_reward(obs)
        b2 = rnd2.intrinsic_reward(obs)
        np.testing.assert_allclose(b2, 2.0 * b1, rtol=1e-9)
