"""Weight initializers.

PPO is sensitive to initialization scale; orthogonal init with the
standard gains (sqrt(2) for hidden ReLU layers, 0.01 for the policy
head, 1.0 for the value head) is the established recipe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["orthogonal", "kaiming_uniform"]


def orthogonal(shape: tuple, gain: float = 1.0, rng: np.random.Generator = None) -> np.ndarray:
    """Orthogonal matrix init (Saxe et al.), reshaped to ``shape``.

    For >2D shapes (conv kernels) the trailing dimensions are flattened,
    matching the PyTorch convention.
    """
    rng = rng or np.random.default_rng()
    if len(shape) < 2:
        raise ValueError("orthogonal init needs at least 2 dimensions")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(size=(rows, cols))
    if rows < cols:
        flat = flat.T
    q, r = np.linalg.qr(flat)
    # Sign correction so the distribution is uniform over orthogonal mats.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return (gain * q).reshape(shape)


def kaiming_uniform(shape: tuple, fan_in: int = None, rng: np.random.Generator = None) -> np.ndarray:
    """He-uniform init, the numpy analog of PyTorch's Linear default."""
    rng = rng or np.random.default_rng()
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    bound = np.sqrt(1.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)
