"""Distributed PPO episode collection over a persistent process pool.

The trainer's batched engine already made every episode a pure function
of (policy weights, its own ``episode.{index}`` RNG stream): episode
``k`` of a run draws from ``SeedSequence(seed).rng(f"episode.{k}")`` no
matter which lockstep wave it rides in, which is what makes batched
collection width-invariant.  This module pushes that property across
process boundaries:

* :func:`collect_wave` / :func:`collect_slice` — the one and only
  lockstep collection loop.  The trainer's in-process path and the pool
  workers both run *this* code, so ``collect_jobs=N`` cannot drift from
  ``collect_jobs=1`` by construction.
* :class:`EpisodeCollector` — a persistent worker pool.  Workers build
  their environment + network replica once (pool initializer); each
  epoch the trainer broadcasts its policy weights (the versioned
  :func:`repro.nn.dumps_payload` schema — the same bytes a checkpoint
  would hold) and assigns each worker a contiguous, *wave-aligned*
  slice of episode indices (:func:`partition_episodes`).  Every episode
  keeps its exact ``episode.{index}`` stream *and* its exact lockstep
  wave width, and the parent merges the slices back in index order, so
  the merged epoch is **bitwise identical** to in-process collection —
  the regression tests pin ``collect_jobs`` 2 and 4 against 1 for the
  plain, RND and batched trainers, including kill+resume.

Because the per-episode streams are *stateless* — derived on demand
from ``(seed, index)`` — workers carry no RNG state between epochs.
The only cross-epoch collection state is the trainer's global episode
counter, which PR 5's checkpoint payload already captures
(``state_dict()["episode_index"]``); kill+resume under sharded
collection therefore stays bitwise with no extra bookkeeping.

The sequential engine (``batch_size=1``) shares one action stream
across episodes — episode ``k``'s trajectory depends on every draw
before it — so it cannot be sharded without changing its golden-pinned
results; the trainer falls back to in-process collection for it
(loudly).

**Fault tolerance.**  Because every slice is a pure function of the
broadcast weights and its ``episode.{index}`` SeedSequence streams,
losing a worker loses no information: :meth:`EpisodeCollector.collect`
detects dead workers (``BrokenProcessPool``) and stalled epochs (no
slice completing within ``slice_timeout``), rebuilds the pool on fresh
processes, and re-dispatches exactly the missing slices — the merged
epoch is **bitwise identical** to an undisturbed one (regression-
pinned).  After ``max_pool_failures`` consecutive failed rounds the
collector degrades to in-process collection (same
:func:`collect_slice` loop, still bitwise) instead of fighting a
broken machine.  A worker-initializer failure is captured in the
worker and re-raised promptly as a
:class:`~repro.parallel.faults.WorkerInitError` carrying the real
traceback, never surfacing as an opaque ``BrokenProcessPool``.
Degradation is not a life sentence: after ``reprobe_after`` in-process
epochs the collector re-probes the pool (one probation round — a
single failed round re-degrades), so a run that outlives a transient
machine-wide stall gets its workers back.

**Pipelined (async) collection.**  :meth:`EpisodeCollector.prefetch`
dispatches a slice set *without blocking* and
:meth:`EpisodeCollector.collect_prefetched` harvests it later — the
futures-based handoff behind the trainer's ``async_collect`` mode,
where collection of epoch k+1 (with the *pre-update* epoch-k weights)
overlaps the PPO update of epoch k.  The broadcast payload is
double-buffered by construction: the prefetch holds its own serialized
weight bytes, so the learner is free to mutate the live network while
workers collect.  All fault tolerance carries over — a lost prefetch
worker is re-dispatched at harvest time *from the stored bytes*, so
faults can never change which policy collected an epoch.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait

import numpy as np

from repro.nn import dumps_payload, loads_payload
from repro.parallel import chaos
from repro.parallel.faults import RetryPolicy, WorkerInitError
from repro.rl import Episode
from repro.utils import SeedSequence, get_logger

__all__ = [
    "EpisodeCollector",
    "POLICY_PAYLOAD_KIND",
    "ReplicaCollector",
    "collect_slice",
    "collect_wave",
    "partition_episodes",
]

_logger = get_logger("parallel.collector")

#: ``kind`` tag of the per-epoch policy-weight broadcast payload.
POLICY_PAYLOAD_KIND = "collector-policy"


def episode_rng(seeds: SeedSequence, index: int) -> np.random.Generator:
    """The RNG stream of global episode ``index`` (pure in (seed, index))."""
    return seeds.rng(f"episode.{index}")


def partition_episodes(
    start_index: int, count: int, width: int, jobs: int
) -> list:
    """Contiguous, wave-aligned ``(start, size)`` slices of an epoch.

    In-process collection sweeps the epoch in lockstep waves of
    ``width`` episodes (a final partial wave takes the remainder).
    Slices are cut ONLY on those wave boundaries, so a sharded epoch
    reproduces the exact in-process wave structure: every episode rides
    a wave of the same width it would ride under ``collect_jobs=1``.
    That alignment is load-bearing for bitwise equality — per-row
    results are width-invariant across widths >= 2 (shape-stable
    per-row GEMMs), but a width-1 wave goes through a different BLAS
    kernel (GEMV vs GEMM) whose accumulation can differ in the last
    ulp, so the remainder wave must stay a remainder wave.

    Deterministic in its arguments: the first ``n_waves % jobs`` slices
    get one extra wave.  Empty slices are never emitted (``jobs``
    beyond the wave count simply go idle), so every returned slice maps
    to one worker task.
    """
    if count < 1:
        return []
    width = min(width, count)
    n_waves = -(-count // width)  # ceil division
    workers = min(jobs, n_waves)
    base, extra = divmod(n_waves, workers)
    slices = []
    first_wave = 0
    for worker in range(workers):
        waves = base + (1 if worker < extra else 0)
        begin = first_wave * width
        end = min((first_wave + waves) * width, count)
        slices.append((start_index + begin, end - begin))
        first_wave += waves
    return slices


def collect_wave(network, batched_env, rngs, greedy: bool = False) -> list:
    """One lockstep wave of ``len(rngs)`` episodes through ``batched_env``.

    Row ``i`` samples exclusively from ``rngs[i]``; the conv stack runs
    per-row shape-stable GEMMs, so each episode's trajectory is
    independent of its wave companions — the invariance every
    ``collect_jobs``/``batch_size`` guarantee in this repo rests on.
    """
    wave_n = len(rngs)
    episodes = [Episode() for _ in range(wave_n)]
    infos: list = [{} for _ in range(wave_n)]
    observations, masks = batched_env.reset(wave_n)
    live = batched_env.live_indices
    static_channels = batched_env.observation_builder.STATIC_CHANNELS
    first_step = True
    while len(live):
        actions, log_probs, values = network.act_batch(
            observations,
            masks,
            [rngs[i] for i in live],
            greedy=greedy,
            static_channels=static_channels,
            # Right after a lockstep reset every row is identical, so
            # the forward runs once and broadcasts.
            shared_rows=first_step,
        )
        first_step = False
        for row, index in enumerate(live):
            episodes[index].add_step(
                observations[row],
                masks[row],
                int(actions[row]),
                float(log_probs[row]),
                float(values[row]),
            )
        result = batched_env.step(actions)
        for index, reward, info in result.finished:
            episodes[index].set_terminal_reward(reward)
            infos[index] = info
        observations, masks = result.observations, result.masks
        live = result.live_indices
    return list(zip(episodes, infos))


def collect_slice(
    network,
    batched_env,
    seeds: SeedSequence,
    start_index: int,
    count: int,
    width: int,
    greedy: bool = False,
) -> list:
    """Collect episodes ``start_index .. start_index+count-1`` in waves.

    Exactly the trainer's in-process batched loop: waves of
    ``min(width, remaining)`` episodes, each episode on its own
    ``episode.{index}`` stream.  Called identically by the trainer
    (one slice spanning the whole epoch) and by pool workers (one
    contiguous sub-slice each).
    """
    collected = []
    width = min(width, count)
    for offset in range(0, count, width):
        wave_n = min(width, count - offset)
        rngs = [
            episode_rng(seeds, start_index + offset + k)
            for k in range(wave_n)
        ]
        collected.extend(collect_wave(network, batched_env, rngs, greedy))
    return collected


class ReplicaCollector:
    """A lazily built env + network replica collecting from weight bytes.

    The one in-process collection engine every fallback path shares:
    the pool's degradation rung, the remote collector's last rung, and
    the remote worker's task loop all call :meth:`collect` with the
    broadcast payload bytes and a list of ``(index, (start, size))``
    slices.  Construction is deferred to first use (degradation paths
    are usually never taken), and the network's init weights are
    irrelevant — every call starts by loading the broadcast payload —
    so a fixed dummy RNG keeps it cheap and seed-independent.
    """

    def __init__(
        self, system, reward_calculator, env_config, channels, batch_size, seed
    ):
        self._env_args = (system, reward_calculator, env_config)
        self._channels = tuple(channels)
        self.batch_size = batch_size
        self._seed = seed
        self._network = None
        self._batched_env = None
        self._seeds: SeedSequence | None = None

    def _ensure(self) -> None:
        if self._network is not None:
            return
        # Imported lazily: repro.agent.__init__ imports the trainer,
        # which imports this module — a module-level import of the
        # networks would close that cycle during interpreter start-up.
        from repro.agent.networks import ActorCritic
        from repro.env import BatchedFloorplanEnv, FloorplanEnv

        env = FloorplanEnv(*self._env_args)
        self._network = ActorCritic(
            env.observation_shape,
            env.n_actions,
            channels=self._channels,
            rng=np.random.default_rng(0),
        )
        self._batched_env = BatchedFloorplanEnv(*self._env_args)
        self._seeds = SeedSequence(self._seed)

    def collect(self, weights: bytes, slices: list, greedy: bool) -> dict:
        """Run ``[(index, (start, size)), ...]``; returns {index: pairs}.

        Loads the broadcast payload into the replica — never a live
        training network, which under async collection may already hold
        post-update weights — then runs the one lockstep loop.  The
        payload round-trips bit-for-bit, so every engine that runs this
        code on the same bytes agrees bitwise.
        """
        self._ensure()
        self._network.load_state_dict(
            loads_payload(weights, kind=POLICY_PAYLOAD_KIND)
        )
        return {
            index: collect_slice(
                self._network,
                self._batched_env,
                self._seeds,
                start,
                size,
                self.batch_size,
                greedy=greedy,
            )
            for index, (start, size) in slices
        }


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Per-process replica of the collection stack, built once by the pool
#: initializer and reused for every epoch the worker serves.
_WORKER_STATE: dict | None = None


def _init_worker(
    system, reward_calculator, env_config, channels, batch_size, seed
) -> None:
    """Pool initializer: build this worker's env + network replica.

    Runs once per worker process.  The network's init weights are
    irrelevant — every task starts by loading the broadcast weights —
    so a fixed dummy RNG keeps construction cheap and seed-independent.

    A construction failure (bad env config, missing table file...) is
    **captured**, not raised: an initializer that raises kills the
    worker, the executor respawns it, it dies again, and the parent
    eventually sees an opaque ``BrokenProcessPool`` with the real
    traceback lost to a worker's stderr.  Instead the failure is parked
    in the worker state and the first task re-raises it as a
    :class:`WorkerInitError` carrying the full traceback — promptly and
    debuggably.
    """
    global _WORKER_STATE
    try:
        chaos.maybe_fail("collector.init")
        # Imported here, not at module level: repro.agent.__init__
        # imports the trainer, which imports this module — a module-
        # level import of the networks would close that cycle during
        # interpreter start-up.
        from repro.agent.networks import ActorCritic
        from repro.env import BatchedFloorplanEnv, FloorplanEnv

        env = FloorplanEnv(system, reward_calculator, env_config)
        network = ActorCritic(
            env.observation_shape,
            env.n_actions,
            channels=channels,
            rng=np.random.default_rng(0),
        )
        _WORKER_STATE = {
            "network": network,
            "batched_env": BatchedFloorplanEnv(
                system, reward_calculator, env_config
            ),
            "seeds": SeedSequence(seed),
            "batch_size": batch_size,
        }
    except BaseException:  # noqa: BLE001 - captured for prompt re-raise
        _WORKER_STATE = {"init_error": traceback.format_exc()}


def _collect_remote(
    weights: bytes,
    start_index: int,
    count: int,
    greedy: bool,
    chaos_point: str = "collector.slice",
) -> list:
    """Worker task: load the broadcast weights, collect one slice.

    ``chaos_point`` names the injection site this dispatch fires
    (``collector.slice`` for lockstep epochs, ``collector.prefetch``
    for slices dispatched ahead of time by the async trainer) so chaos
    runs can target one mode without disturbing the other.
    """
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer contract
        raise RuntimeError("collector worker was never initialized")
    if "init_error" in state:
        raise WorkerInitError(
            "collection worker failed to initialize:\n" + state["init_error"]
        )
    chaos.maybe_fail(chaos_point, f"slice@{start_index}")
    state["network"].load_state_dict(
        loads_payload(weights, kind=POLICY_PAYLOAD_KIND)
    )
    return collect_slice(
        state["network"],
        state["batched_env"],
        state["seeds"],
        start_index,
        count,
        state["batch_size"],
        greedy=greedy,
    )


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class EpisodeCollector:
    """Persistent worker pool for sharded episode collection.

    Parameters
    ----------
    system, reward_calculator, env_config:
        The environment replica each worker builds (must be picklable —
        the fast thermal model is; a live ``splu``-holding grid solver
        is not, and RL arms never train against one).
    jobs:
        Worker processes (>= 2; ``collect_jobs=1`` never constructs a
        collector).
    batch_size:
        Lockstep wave width inside each worker (>= 2: the sequential
        engine's shared action stream cannot be sharded).
    seed:
        The trainer seed; workers re-derive the exact per-episode
        streams from it.
    encoder_channels:
        Conv widths of the actor-critic replica.
    slice_timeout:
        Straggler detection: if no slice completes for this many
        seconds while work is outstanding, the epoch is declared
        stalled, the pool's workers are killed and rebuilt, and the
        missing slices are re-dispatched (bitwise-safe — slices are
        pure functions of the broadcast weights and seed streams).
        ``None`` (default) disables the stall clock.
    policy:
        :class:`~repro.parallel.faults.RetryPolicy` supplying the
        backoff pauses between pool rebuilds (its attempt budget is
        not used here — ``max_pool_failures`` bounds the rebuilds).
    max_pool_failures:
        After this many *consecutive* failed dispatch rounds (a round
        that completes at least one slice resets the count), the
        collector stops fighting the machine and degrades to
        in-process collection — same :func:`collect_slice` loop, so
        still bitwise.
    reprobe_after:
        Degradation is bounded, not sticky: after this many in-process
        collection rounds the collector re-probes the pool with one
        probation round (a single failed round re-degrades immediately,
        a successful one fully rehabilitates the pool).  ``0`` restores
        the old degrade-forever behavior.  Re-probing never changes
        results — only which process runs the same pure slice
        functions.

    Workers spawn lazily on the first :meth:`collect` and persist
    across epochs; :meth:`close` (or the context manager) releases
    them.  Any failure or interrupt mid-collection shuts the pool down
    with ``cancel_futures=True`` before propagating, so a Ctrl-C never
    strands worker processes behind a dead trainer.
    """

    def __init__(
        self,
        system,
        reward_calculator,
        env_config,
        *,
        jobs: int,
        batch_size: int,
        seed: int,
        encoder_channels: tuple = (16, 32, 32),
        slice_timeout: float | None = None,
        policy: RetryPolicy | None = None,
        max_pool_failures: int = 3,
        reprobe_after: int = 2,
        compress_broadcast: bool = False,
    ):
        if jobs < 2:
            raise ValueError("EpisodeCollector needs jobs >= 2")
        if batch_size < 2:
            raise ValueError(
                "distributed collection requires the batched engine "
                "(batch_size >= 2); the sequential engine's episodes "
                "share one action stream and cannot be sharded bitwise"
            )
        if max_pool_failures < 1:
            raise ValueError("max_pool_failures must be >= 1")
        if reprobe_after < 0:
            raise ValueError("reprobe_after must be >= 0 (0 = never)")
        self.jobs = jobs
        self.batch_size = batch_size
        self.slice_timeout = slice_timeout
        self.policy = policy if policy is not None else RetryPolicy()
        self.max_pool_failures = max_pool_failures
        self.reprobe_after = reprobe_after
        # Opt-in zlib on the per-epoch weight broadcast.  Transport
        # encoding only: loads_payload auto-detects it, the decoded
        # state dict is bitwise identical, so episodes are too.
        self.compress_broadcast = bool(compress_broadcast)
        self._env_args = (system, reward_calculator, env_config)
        self._seed = seed
        self._initargs = (
            system,
            reward_calculator,
            env_config,
            tuple(encoder_channels),
            batch_size,
            seed,
        )
        self._pool: ProcessPoolExecutor | None = None
        self._consecutive_failures = 0
        self._degraded = False
        self._inprocess_rounds = 0
        self._fallback: ReplicaCollector | None = None
        # Outstanding prefetch (async mode): {"weights", "slices",
        # "futures", "greedy"} or None.  At most one at a time.
        self._prefetch: dict | None = None

    @property
    def active(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._pool is not None

    @property
    def degraded(self) -> bool:
        """Whether the collector has fallen back to in-process collection."""
        return self._degraded

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            _logger.info("starting %d collection workers", self.jobs)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=self._initargs,
            )
        return self._pool

    def _teardown_pool(self) -> None:
        """Kill the worker processes and forget the pool (hung-safe).

        ``shutdown(wait=True)`` would block on a hung worker forever;
        instead the process table is snapshotted, the executor is
        abandoned with ``cancel_futures``, and the workers are
        terminated outright.  Slices are side-effect-free, so a killed
        worker loses nothing that re-dispatch cannot reproduce.
        """
        if self._pool is None:
            return
        workers = list((getattr(self._pool, "_processes", None) or {}).values())
        self._pool.shutdown(wait=False, cancel_futures=True)
        for process in workers:
            if process.is_alive():
                process.terminate()
        self._pool = None

    def _collect_in_process(
        self, weights: bytes, slices: list, greedy: bool
    ) -> dict:
        """Run ``slices`` through the same lockstep loop, in the parent.

        The degradation path, delegated to a lazily cached
        :class:`ReplicaCollector` (which loads the *broadcast payload*,
        never the trainer's live network — see its docstring).
        """
        if self._fallback is None:
            self._fallback = ReplicaCollector(
                *self._env_args,
                channels=self._initargs[3],
                batch_size=self.batch_size,
                seed=self._seed,
            )
        return self._fallback.collect(weights, slices, greedy)

    def _degrade(self, reason: str) -> None:
        _logger.error(
            "collection pool failed %d consecutive round(s) (%s); "
            "degrading to in-process collection — results stay bitwise "
            "identical, only wall clock suffers%s",
            self._consecutive_failures,
            reason,
            (
                f"; the pool will be re-probed after "
                f"{self.reprobe_after} in-process round(s)"
                if self.reprobe_after
                else ""
            ),
        )
        self._teardown_pool()
        self._degraded = True
        self._inprocess_rounds = 0

    def _maybe_reprobe(self) -> None:
        """Bounded re-probe: lift degradation after ``reprobe_after`` rounds.

        The rehabilitated pool gets exactly one probation round —
        ``_consecutive_failures`` restarts at ``max_pool_failures - 1``,
        so a single failed round re-degrades (and restarts the re-probe
        clock), while a successful round resets the count to zero as
        usual.
        """
        if not self._degraded or not self.reprobe_after:
            return
        if self._inprocess_rounds < self.reprobe_after:
            return
        _logger.warning(
            "re-probing the collection pool after %d in-process "
            "round(s) — one probation round, results unaffected",
            self._inprocess_rounds,
        )
        self._degraded = False
        self._inprocess_rounds = 0
        self._consecutive_failures = self.max_pool_failures - 1

    def collect(
        self, network, start_index: int, count: int, greedy: bool = False
    ) -> list:
        """Collect ``count`` episodes starting at global ``start_index``.

        Broadcasts ``network``'s weights once, fans contiguous index
        slices over the workers, and returns ``[(Episode, info), ...]``
        merged in strict index order — bitwise identical to one
        in-process :func:`collect_slice` over the same range.
        """
        weights = dumps_payload(
            network.state_dict(),
            kind=POLICY_PAYLOAD_KIND,
            compress=self.compress_broadcast,
        )
        return self.collect_with_weights(
            weights, start_index, count, greedy=greedy
        )

    def collect_with_weights(
        self,
        weights: bytes,
        start_index: int,
        count: int,
        greedy: bool = False,
    ) -> list:
        """Like :meth:`collect`, but from already-serialized weights.

        The async trainer's entry point: the payload bytes pin *which*
        policy collects, independent of what the live network holds by
        the time collection actually runs.

        Survives worker loss: dead workers (``BrokenProcessPool``) and
        stalled epochs (``slice_timeout``) trigger a pool rebuild and
        re-dispatch of exactly the slices that never completed.  A
        deterministic exception from a slice (a real bug) propagates
        immediately; so does :class:`WorkerInitError` (rebuilt workers
        would fail construction identically).  After
        ``max_pool_failures`` consecutive failed rounds the remaining
        slices run in-process and the collector degrades (until the
        bounded re-probe lifts it).
        """
        slices = list(
            enumerate(
                partition_episodes(
                    start_index, count, self.batch_size, self.jobs
                )
            )
        )
        return self._run_rounds(
            weights, slices, {}, None, greedy, "collector.slice"
        )

    # ------------------------------------------------------------------
    # pipelined (async) handoff
    # ------------------------------------------------------------------

    @property
    def prefetching(self) -> bool:
        """Whether a prefetched slice set is outstanding."""
        return self._prefetch is not None

    def prefetch(
        self,
        weights: bytes,
        start_index: int,
        count: int,
        greedy: bool = False,
    ) -> None:
        """Dispatch a slice set to the pool without waiting for it.

        The double-buffered half of async collection: ``weights`` is a
        self-contained serialized payload, so the caller may mutate its
        live network (run the PPO update) while workers collect.
        Harvest with :meth:`collect_prefetched`.

        Degraded (or submission-failed) prefetches dispatch nothing —
        the caller's harvest falls back to :meth:`collect_with_weights`
        with the same stored bytes, so overlap is lost but results are
        not.  At most one prefetch may be outstanding.
        """
        if self._prefetch is not None:
            raise RuntimeError(
                "a prefetch is already outstanding; harvest it with "
                "collect_prefetched() or drop it with cancel_prefetch()"
            )
        self._maybe_reprobe()
        if self._degraded:
            return
        slices = list(
            enumerate(
                partition_episodes(
                    start_index, count, self.batch_size, self.jobs
                )
            )
        )
        try:
            futures = self._submit_round(
                weights, slices, greedy, "collector.prefetch"
            )
        except Exception as error:  # noqa: BLE001 - resilience path
            # A dead pool at submit time counts as one failed round;
            # the harvest-side retry loop (or eventual degradation)
            # takes it from here.  A non-transient error (a real bug)
            # would reproduce at harvest time too — surface it now.
            if not self.policy.is_transient(error):
                raise
            _logger.warning(
                "prefetch dispatch failed (%r); collection will run "
                "synchronously at harvest time",
                error,
            )
            self._teardown_pool()
            self._consecutive_failures += 1
            return
        self._prefetch = {
            "weights": weights,
            "slices": slices,
            "futures": futures,
            "greedy": greedy,
        }

    def collect_prefetched(self) -> list:
        """Harvest the outstanding prefetch (blocking), merged in order.

        Fault tolerance matches :meth:`collect_with_weights`: slices
        lost with a dead worker are re-dispatched from the prefetch's
        *stored* weight bytes, so a fault can never change which policy
        collected the epoch.
        """
        state = self._prefetch
        self._prefetch = None
        if state is None:
            raise RuntimeError("no prefetch is outstanding")
        return self._run_rounds(
            state["weights"],
            state["slices"],
            {},
            state["futures"],
            state["greedy"],
            "collector.prefetch",
        )

    def cancel_prefetch(self) -> None:
        """Drop the outstanding prefetch, if any (idempotent).

        Queued slices are cancelled; already-running ones finish in
        their workers and are discarded.  Nothing is consumed, so
        determinism is unaffected.
        """
        state = self._prefetch
        self._prefetch = None
        if state is None:
            return
        for future in state["futures"]:
            future.cancel()

    # ------------------------------------------------------------------

    def _run_rounds(
        self,
        weights: bytes,
        slices: list,
        results: dict,
        futures: dict | None,
        greedy: bool,
        chaos_point: str,
    ) -> list:
        """Drive ``slices`` to completion; the one retry/degrade loop.

        ``futures`` carries an already-dispatched round (the prefetch
        handoff) to harvest before any new dispatch.  Missing slices
        are re-dispatched on fresh pools with backoff until they
        complete, a deterministic error propagates, or
        ``max_pool_failures`` consecutive failures degrade the rest to
        in-process collection.
        """
        self._maybe_reprobe()
        if self._degraded:
            self._inprocess_rounds += 1
            results.update(
                self._collect_in_process(
                    weights,
                    [item for item in slices if item[0] not in results],
                    greedy,
                )
            )
            return self._merge(results, slices)
        try:
            while True:
                missing = [item for item in slices if item[0] not in results]
                if not missing:
                    break
                if self._consecutive_failures >= self.max_pool_failures:
                    self._degrade("giving up on the pool")
                    self._inprocess_rounds += 1
                    results.update(
                        self._collect_in_process(weights, missing, greedy)
                    )
                    break
                round_failure = None
                if futures is None:
                    try:
                        futures = self._submit_round(
                            weights, missing, greedy, chaos_point
                        )
                    except Exception as error:
                        # A worker dying between two submits of the same
                        # round breaks the pool mid-dispatch and makes
                        # the *next* submit raise synchronously; that is
                        # a lost round like any other, not a crash.
                        if not self.policy.is_transient(error):
                            raise
                        round_failure = f"dispatch failed: {error!r}"
                if round_failure is None:
                    round_failure = self._gather_round(futures, results)
                futures = None
                if round_failure is None:
                    self._consecutive_failures = 0
                else:
                    self._consecutive_failures += 1
                    _logger.warning(
                        "collection round failed (%s); rebuilding the pool "
                        "and re-dispatching %d missing slice(s) "
                        "[failure %d/%d]",
                        round_failure,
                        sum(
                            1
                            for item in slices
                            if item[0] not in results
                        ),
                        self._consecutive_failures,
                        self.max_pool_failures,
                    )
                    self._teardown_pool()
                    if self._consecutive_failures < self.max_pool_failures:
                        time.sleep(
                            self.policy.backoff(
                                "collector", self._consecutive_failures
                            )
                        )
        except BaseException:
            # Real bug, WorkerInitError, or Ctrl-C in the parent: never
            # strand the pool — cancel queued slices and abandon the rest.
            self.close(wait=False)
            raise
        return self._merge(results, slices)

    def _submit_round(
        self, weights: bytes, missing: list, greedy: bool, chaos_point: str
    ) -> dict:
        """Dispatch ``missing`` to the pool; returns {future: index}."""
        pool = self._ensure_pool()
        return {
            pool.submit(
                _collect_remote, weights, start, size, greedy, chaos_point
            ): index
            for index, (start, size) in missing
        }

    def _gather_round(self, futures: dict, results: dict) -> str | None:
        """Await one dispatched round; fills ``results`` in place.

        Returns ``None`` on full success, else a short description of
        the failure (the round should be retried on a fresh pool).
        Deterministic slice exceptions and init failures are raised,
        not returned — they would reproduce on any pool.
        """
        pending = set(futures)
        while pending:
            finished, pending = futures_wait(
                pending,
                timeout=self.slice_timeout,
                return_when=FIRST_COMPLETED,
            )
            if not finished:
                # Straggler: nothing completed inside the stall window.
                return (
                    f"no slice completed within slice_timeout="
                    f"{self.slice_timeout:.1f}s"
                )
            for future in finished:
                error = future.exception()
                if error is None:
                    results[futures[future]] = future.result()
                elif self.policy.is_transient(error):
                    # Dead worker / broken pool: sibling futures are
                    # lost with it; report the round failed.
                    return f"worker lost: {error!r}"
                else:
                    # A real exception from the slice itself (or a
                    # WorkerInitError): reproduces on retry — raise.
                    raise error
        return None

    @staticmethod
    def _merge(results: dict, slices: list) -> list:
        # Slices are keyed by their partition index, so concatenation
        # in that order IS the fixed index-order merge the
        # best-placement selection relies on — however many dispatch
        # rounds (or the in-process fallback) produced them.
        return [
            pair for index, _ in slices for pair in results[index]
        ]

    def close(self, wait: bool = True) -> None:
        """Release the worker processes (idempotent)."""
        self.cancel_prefetch()
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None

    def __enter__(self) -> "EpisodeCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=exc_info[0] is None)
