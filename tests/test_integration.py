"""Cross-module integration tests: the full pipeline on a small system.

These are the "does the library actually compose" tests: every method
combination of the paper's tables on one shared fixture, reproducibility
end to end, and consistency between the two thermal backends.
"""

import numpy as np
import pytest

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.baselines import TAP25DConfig, TAP25DPlacer, random_search
from repro.chiplet.validate import validate_placement
from repro.env import EnvConfig, FloorplanEnv
from repro.reward import RewardCalculator, RewardConfig
from repro.rl import PPOConfig
from repro.thermal.config import KELVIN_OFFSET


@pytest.fixture
def reward_fast(small_fast_model):
    return RewardCalculator(
        small_fast_model, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )


@pytest.fixture
def reward_solver(small_solver):
    return RewardCalculator(
        small_solver, RewardConfig(lambda_wl=1e-4, use_bump_assignment=False)
    )


class TestMethodMatrix:
    """All four method/evaluator combinations produce legal floorplans."""

    def test_rl_with_fast_model(self, small_system, reward_fast):
        env = FloorplanEnv(small_system, reward_fast, EnvConfig(grid_size=12))
        trainer = RLPlannerTrainer(
            env,
            TrainerConfig(
                epochs=2,
                episodes_per_epoch=4,
                seed=0,
                log_every=0,
                encoder_channels=(4, 8, 8),
                ppo=PPOConfig(minibatch_size=8),
            ),
        )
        result = trainer.train()
        validate_placement(result.best_placement)

    def test_rl_with_solver(self, small_system, reward_solver):
        env = FloorplanEnv(small_system, reward_solver, EnvConfig(grid_size=12))
        trainer = RLPlannerTrainer(
            env,
            TrainerConfig(
                epochs=1,
                episodes_per_epoch=2,
                seed=0,
                log_every=0,
                encoder_channels=(4, 8, 8),
                ppo=PPOConfig(minibatch_size=8),
            ),
        )
        result = trainer.train()
        validate_placement(result.best_placement)

    def test_sa_with_fast_model(self, small_system, reward_fast):
        placer = TAP25DPlacer(
            small_system, reward_fast, TAP25DConfig(n_iterations=40, seed=0)
        )
        result = placer.run()
        validate_placement(result.placement)

    def test_sa_with_solver(self, small_system, reward_solver):
        placer = TAP25DPlacer(
            small_system, reward_solver, TAP25DConfig(n_iterations=10, seed=0)
        )
        result = placer.run()
        validate_placement(result.placement)


class TestEvaluatorConsistency:
    def test_backends_agree_on_ranking(
        self, small_system, reward_fast, reward_solver
    ):
        """Fast model and solver should rank clearly different layouts alike."""
        results = random_search(small_system, reward_fast, n_samples=6, seed=1)
        good = results.placement
        bad = random_search(small_system, reward_fast, n_samples=1, seed=99).placement
        fast_good = reward_fast.evaluate(good).reward
        fast_bad = reward_fast.evaluate(bad).reward
        if abs(fast_good - fast_bad) > 0.3:  # only meaningful when distinct
            solver_good = reward_solver.evaluate(good).reward
            solver_bad = reward_solver.evaluate(bad).reward
            assert (fast_good > fast_bad) == (solver_good > solver_bad)

    def test_temperatures_close(self, small_system, reward_fast, reward_solver):
        placement = random_search(
            small_system, reward_fast, n_samples=1, seed=3
        ).placement
        t_fast = reward_fast.evaluate(placement).max_temperature_c
        t_solver = reward_solver.evaluate(placement).max_temperature_c
        assert t_fast == pytest.approx(t_solver, abs=1.5)


class TestEndToEndReproducibility:
    def test_same_seed_same_history(self, small_system, reward_fast):
        def run():
            env = FloorplanEnv(
                small_system, reward_fast, EnvConfig(grid_size=12)
            )
            trainer = RLPlannerTrainer(
                env,
                TrainerConfig(
                    epochs=2,
                    episodes_per_epoch=4,
                    seed=11,
                    log_every=0,
                    encoder_channels=(4, 8, 8),
                    ppo=PPOConfig(minibatch_size=8),
                ),
            )
            result = trainer.train()
            return [h["mean_reward"] for h in result.history]

        assert run() == pytest.approx(run())

    def test_sa_same_seed_same_best(self, small_system, reward_fast):
        def run():
            placer = TAP25DPlacer(
                small_system, reward_fast, TAP25DConfig(n_iterations=30, seed=5)
            )
            return placer.run().reward

        assert run() == pytest.approx(run())


class TestThermalResultContainer:
    def test_celsius_and_hottest(self, small_system, small_solver):
        placement = random_search(
            small_system,
            RewardCalculator(
                small_solver, RewardConfig(use_bump_assignment=False)
            ),
            n_samples=1,
            seed=0,
        ).placement
        result = small_solver.evaluate(placement)
        assert result.max_temperature_celsius == pytest.approx(
            result.max_temperature - KELVIN_OFFSET
        )
        hottest = result.hottest_chiplet
        assert result.temperature_of(hottest) == result.max_temperature
        assert result.temperature_of(hottest, celsius=True) < result.temperature_of(
            hottest
        )
