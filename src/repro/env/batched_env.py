"""Lockstep batched version of the sequential-placement environment.

:class:`BatchedFloorplanEnv` steps ``n`` independent episodes of the
same system in lockstep: every live episode is placing the same chiplet
(the canonical placement order is shared), so one call produces stacked
observations and masks that feed a single batched actor-critic forward
pass instead of ``n`` sequential single-row forwards.

Episode semantics are identical to :class:`~repro.env.FloorplanEnv`:

* terminal reward after the last placement (evaluated for the whole
  batch in one pass through the shared reward calculator);
* deadlock (empty mask for the next die) ends that episode with the
  configured penalty while the rest of the batch keeps running.

Batching economies:

* grid coverage rasterization is memoized by footprint rectangle — the
  action space is grid-quantized, so lockstep episodes revisit the same
  rectangles constantly and the cache hit rate is high;
* per-episode placed-footprint lists are maintained incrementally
  instead of being rebuilt from the placement dict every step;
* the feasibility masks come from
  :func:`~repro.env.mask.feasible_cells_batch`, which shares the
  in-bounds region and memoizes carve bounds across the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chiplet import ChipletSystem, Placement
from repro.env.floorplan_env import EnvConfig
from repro.env.mask import feasible_cells_batch
from repro.env.state import ObservationBuilder
from repro.geometry import PlacementGrid
from repro.reward import RewardCalculator

__all__ = ["BatchedStepResult", "BatchedFloorplanEnv"]


@dataclass
class BatchedStepResult:
    """Return value of :meth:`BatchedFloorplanEnv.step`.

    Attributes
    ----------
    observations, masks:
        Stacked arrays for the episodes still running *after* the step,
        ordered like :attr:`live_indices`; ``None`` when all are done.
    live_indices:
        Episode indices (into the ``reset`` batch) still running.
    finished:
        ``(index, reward, info)`` for every episode that terminated this
        step; ``info`` matches the sequential environment's terminal
        info dict (``breakdown``/``placement`` or ``deadlock`` entries).
    all_done:
        True when no episode is left running.
    """

    observations: np.ndarray | None
    masks: np.ndarray | None
    live_indices: np.ndarray
    finished: list = field(default_factory=list)

    @property
    def all_done(self) -> bool:
        return len(self.live_indices) == 0


class BatchedFloorplanEnv:
    """Steps ``n`` episodes of one system in lockstep.

    Parameters
    ----------
    system:
        The design to floorplan.
    reward_calculator:
        Shared terminal evaluator; finished placements of a step are
        evaluated in one batch pass.
    config:
        Same options as the sequential environment.
    """

    def __init__(
        self,
        system: ChipletSystem,
        reward_calculator: RewardCalculator,
        config: EnvConfig | None = None,
    ):
        self.system = system
        self.reward_calculator = reward_calculator
        self.config = config or EnvConfig()
        interposer = system.interposer
        self.grid = PlacementGrid(
            interposer.width,
            interposer.height,
            self.config.grid_size,
            self.config.grid_size,
        )
        self.observation_builder = ObservationBuilder(system, self.grid)
        self.order = system.placement_order()
        self._placements: list = []
        self._placed_rects: list = []
        self._live: np.ndarray = np.array([], dtype=np.intp)
        self._masks: np.ndarray | None = None
        self._step_index = 0
        self.episode_count = 0
        # Incremental observation state: occupancy/power are per-episode
        # running maxima (exact, so bitwise-identical to a full rebuild)
        # updated as dies are placed; the connect channel is recomputed
        # per step from cached per-die coverages.
        self._occupancy: np.ndarray | None = None
        self._power: np.ndarray | None = None
        self._covers: list = []
        self._density = {
            c.name: c.power_density / self.observation_builder.max_density
            for c in system.chiplets
        }
        # Footprint-rect -> coverage raster, shared across episodes and
        # steps (the grid quantizes origins, so hits dominate).  Arrays
        # handed out are treated as read-only by all consumers.  Bounded:
        # an exploring policy can visit every (origin, size) combination
        # over a long run, which would retain one raster per combination
        # forever; clearing on overflow keeps the common within-epoch
        # reuse while capping memory at ~8 MB on a 32x32 grid.
        self._coverage_cache: dict = {}
        self._coverage_cache_limit = 1024

    # ------------------------------------------------------------------

    @property
    def n_actions(self) -> int:
        base = self.grid.n_cells
        return base * 2 if self.config.allow_rotation else base

    @property
    def observation_shape(self) -> tuple:
        return self.observation_builder.shape

    @property
    def episode_length(self) -> int:
        return self.system.n_chiplets

    @property
    def current_chiplet_name(self) -> str:
        return self.order[self._step_index]

    @property
    def live_indices(self) -> np.ndarray:
        """Indices of episodes still running, in step-alignment order."""
        return self._live.copy()

    # ------------------------------------------------------------------

    def reset(self, n_episodes: int) -> tuple:
        """Start ``n_episodes`` fresh episodes; returns (obs, masks)."""
        if n_episodes < 1:
            raise ValueError("n_episodes must be >= 1")
        self._placements = [Placement(self.system) for _ in range(n_episodes)]
        self._placed_rects = [[] for _ in range(n_episodes)]
        self._live = np.arange(n_episodes, dtype=np.intp)
        self._step_index = 0
        self.episode_count += n_episodes
        rows, cols = self.grid.shape
        self._occupancy = np.zeros((n_episodes, rows, cols))
        self._power = np.zeros((n_episodes, rows, cols))
        self._covers = [[] for _ in range(n_episodes)]
        observations = self._observe_live()
        self._masks = self._masks_live()
        return observations, self._masks

    def step(self, actions) -> BatchedStepResult:
        """Place the current chiplet in every live episode.

        ``actions`` is aligned with the current :attr:`live_indices`.
        """
        if len(self._placements) == 0:
            raise RuntimeError("call reset() before step()")
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (len(self._live),):
            raise ValueError(
                f"expected {len(self._live)} actions "
                f"(one per live episode), got shape {actions.shape}"
            )
        if ((actions < 0) | (actions >= self.n_actions)).any():
            raise ValueError("action out of range")
        feasible = np.take_along_axis(self._masks, actions[:, None], axis=1)
        if not feasible.all():
            bad = int(self._live[int(np.flatnonzero(~feasible[:, 0])[0])])
            raise ValueError(f"episode {bad}: action is masked as infeasible")

        name = self.current_chiplet_name
        density = self._density[name]
        for row, index in enumerate(self._live):
            cell_index, rotated = self._decode(int(actions[row]))
            grid_row, grid_col = self.grid.unflatten(cell_index)
            x, y = self.grid.cell_origin(grid_row, grid_col)
            placement = self._placements[index]
            placement.place(name, x, y, rotated=rotated)
            rect = placement.footprint(name)
            self._placed_rects[index].append(rect)
            cover = self._coverage(rect)
            np.maximum(
                self._occupancy[index], cover, out=self._occupancy[index]
            )
            np.maximum(
                self._power[index], cover * density, out=self._power[index]
            )
            self._covers[index].append((name, cover))
        self._step_index += 1

        finished: list = []
        if self._step_index == self.system.n_chiplets:
            breakdowns = self.reward_calculator.evaluate_batch(
                [self._placements[i] for i in self._live]
            )
            for index, breakdown in zip(self._live, breakdowns):
                finished.append(
                    (
                        int(index),
                        breakdown.reward,
                        {
                            "breakdown": breakdown,
                            "placement": self._placements[index].copy(),
                        },
                    )
                )
            self._live = np.array([], dtype=np.intp)
            self._masks = None
            return BatchedStepResult(None, None, self._live.copy(), finished)

        # Detect deadlocks: episodes whose next die has no feasible cell.
        masks = self._masks_live()
        alive = masks.any(axis=1)
        for row in np.flatnonzero(~alive):
            index = int(self._live[row])
            finished.append(
                (
                    index,
                    self.config.deadlock_penalty,
                    {
                        "deadlock": True,
                        "unplaceable": self.current_chiplet_name,
                        "placement": self._placements[index].copy(),
                    },
                )
            )
        self._live = self._live[alive]
        if len(self._live) == 0:
            self._masks = None
            return BatchedStepResult(None, None, self._live.copy(), finished)
        self._masks = masks[alive]
        observations = self._observe_live()
        return BatchedStepResult(
            observations, self._masks, self._live.copy(), finished
        )

    # ------------------------------------------------------------------

    def _decode(self, action: int) -> tuple:
        """Action id -> (cell index, rotated)."""
        if self.config.allow_rotation and action >= self.grid.n_cells:
            return action - self.grid.n_cells, True
        return action, False

    def _coverage(self, rect) -> np.ndarray:
        key = (rect.x, rect.y, rect.w, rect.h)
        cover = self._coverage_cache.get(key)
        if cover is None:
            if len(self._coverage_cache) >= self._coverage_cache_limit:
                self._coverage_cache.clear()
            cover = self.grid.coverage(rect)
            self._coverage_cache[key] = cover
        return cover

    def _observe_live(self) -> np.ndarray:
        builder = self.observation_builder
        current = self.current_chiplet_name
        live = self._live
        wires_to_current = builder.wires_to(current)
        connect = np.zeros((len(live),) + self.grid.shape)
        if wires_to_current:
            max_wires = builder.max_wires
            for row, index in enumerate(live):
                for name, cover in self._covers[index]:
                    wires = wires_to_current.get(name, 0)
                    if wires:
                        np.maximum(
                            connect[row],
                            cover * (wires / max_wires),
                            out=connect[row],
                        )
        return builder.build_stacked(
            self._occupancy[live],
            self._power[live],
            connect,
            current,
            self._step_index,
        )

    def _masks_live(self) -> np.ndarray:
        """Flat (n_live, n_actions) feasibility masks for the next die."""
        chiplet = self.system.chiplet(self.current_chiplet_name)
        placed_lists = [self._placed_rects[i] for i in self._live]
        spacing = self.system.interposer.min_spacing
        n_live = len(placed_lists)
        upright = feasible_cells_batch(
            self.grid, chiplet.width, chiplet.height, placed_lists, spacing
        ).reshape(n_live, -1)
        if not self.config.allow_rotation:
            return upright
        if chiplet.rotatable and chiplet.width != chiplet.height:
            rotated = feasible_cells_batch(
                self.grid, chiplet.height, chiplet.width, placed_lists, spacing
            ).reshape(n_live, -1)
        elif chiplet.rotatable:
            rotated = upright.copy()
        else:
            rotated = np.zeros_like(upright)
        return np.concatenate([upright, rotated], axis=1)
