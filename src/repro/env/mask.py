"""Action-mask computation.

The action space is the set of grid cells where the current chiplet's
lower-left corner may land.  A cell is feasible when the footprint stays
on the interposer and keeps ``min_spacing`` clearance from every placed
die.  Infeasible-region marking is vectorized per placed die, so the
cost is O(placed * blocked cells), not O(cells * placed).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PlacementGrid, Rect

__all__ = ["feasible_cells"]


def feasible_cells(
    grid: PlacementGrid,
    die_width: float,
    die_height: float,
    placed: list,
    min_spacing: float = 0.0,
) -> np.ndarray:
    """Boolean (rows, cols) mask of feasible lower-left cells.

    Parameters
    ----------
    grid:
        Placement grid over the interposer.
    die_width, die_height:
        Footprint of the die about to be placed, in mm.
    placed:
        Footprint :class:`Rect` of every already-placed die.
    min_spacing:
        Minimum boundary clearance in mm.
    """
    mask = np.zeros(grid.shape, dtype=bool)
    # In-bounds region: lower-left cells whose origin keeps the die inside.
    max_x = grid.width - die_width
    max_y = grid.height - die_height
    if max_x < 0 or max_y < 0:
        return mask  # die does not fit at all
    # Cell origins are col*dx / row*dy; feasible while origin <= max.
    last_col = int(np.floor(max_x / grid.dx + 1e-9))
    last_row = int(np.floor(max_y / grid.dy + 1e-9))
    mask[: last_row + 1, : last_col + 1] = True

    # Carve out the forbidden neighbourhood of each placed die: origins
    # where [x, x+w) x [y, y+h) would come within min_spacing of it.
    for rect in placed:
        x_lo = rect.x - min_spacing - die_width
        x_hi = rect.x2 + min_spacing
        y_lo = rect.y - min_spacing - die_height
        y_hi = rect.y2 + min_spacing
        col_lo = max(int(np.floor(x_lo / grid.dx + 1e-9)) + 1, 0)
        col_hi = min(int(np.ceil(x_hi / grid.dx - 1e-9)), grid.cols)
        row_lo = max(int(np.floor(y_lo / grid.dy + 1e-9)) + 1, 0)
        row_hi = min(int(np.ceil(y_hi / grid.dy - 1e-9)), grid.rows)
        if col_lo < col_hi and row_lo < row_hi:
            mask[row_lo:row_hi, col_lo:col_hi] = False
    return mask
