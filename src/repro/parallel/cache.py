"""Cross-process file coordination for shared on-disk caches.

Two primitives, both deliberately tiny:

* :class:`FileLock` — an advisory exclusive lock on a sidecar ``.lock``
  file (``flock`` where available, exclusive-create spinning
  otherwise).  The lock file is never deleted, which sidesteps the
  classic unlink-while-held race; it is a zero-byte sidecar next to the
  artifact it guards.
* :func:`atomic_replace` — write-to-temp-then-``os.replace`` so readers
  either see the complete artifact or none at all, never a torn write.

Together they give ``load_or_characterize`` its concurrency contract:
any number of worker processes may ask for the same thermal-table cache
entry and exactly one of them computes and publishes it, atomically.
"""

from __future__ import annotations

import contextlib
import os
import time
from pathlib import Path

try:  # POSIX (Linux/macOS; the CI and dev machines)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["FileLock", "atomic_replace"]


class FileLock:
    """Advisory exclusive lock on ``path`` (a dedicated lock file).

    Usage::

        with FileLock(cache_path.with_name(cache_path.name + ".lock")):
            ...  # critical section

    Blocking with a timeout; re-entrant use within one process is not
    supported (and not needed here).
    """

    def __init__(self, path, timeout: float = 600.0, poll: float = 0.05):
        self.path = Path(path)
        self.timeout = timeout
        self.poll = poll
        self._fd = None

    def acquire(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        if fcntl is not None:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except OSError:
                    if time.monotonic() > deadline:
                        os.close(fd)
                        raise TimeoutError(
                            f"could not lock {self.path} in {self.timeout}s"
                        )
                    time.sleep(self.poll)
        else:  # pragma: no cover - non-POSIX fallback
            while True:
                try:
                    self._fd = os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                    )
                    return
                except FileExistsError:
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"could not lock {self.path} in {self.timeout}s"
                        )
                    time.sleep(self.poll)

    def release(self) -> None:
        if self._fd is None:
            return
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(self._fd)
            with contextlib.suppress(FileNotFoundError):
                self.path.unlink()
        self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@contextlib.contextmanager
def atomic_replace(path, suffix: str = ""):
    """Yield a temp path; on success rename it onto ``path`` atomically.

    ``suffix`` lets writers that key on the extension (``np.savez``
    appends ``.npz`` to anything else) produce the format they would
    produce at the final path.  The temp file lives in the destination
    directory so the final ``os.replace`` stays on one filesystem.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp{suffix}")
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(FileNotFoundError):
            tmp.unlink()
