"""Tests for the interconnect delay model."""

import pytest

from repro.bumps import BumpAssigner
from repro.bumps.delay import (
    NetDelay,
    WireTechnology,
    estimate_delays,
    worst_net_delay,
)
from repro.chiplet import Chiplet, ChipletSystem, Interposer, Net, Placement


@pytest.fixture
def assignment():
    system = ChipletSystem(
        "delay-demo",
        Interposer(40, 40),
        (
            Chiplet("a", 8, 8, 10.0),
            Chiplet("b", 8, 8, 10.0),
            Chiplet("c", 8, 8, 10.0),
        ),
        (
            Net("a", "b", wires=16, name="near"),
            Net("a", "c", wires=16, name="far"),
        ),
    )
    p = Placement(system)
    p.place("a", 0, 0)
    p.place("b", 10, 0)   # close neighbour
    p.place("c", 30, 30)  # far corner
    return BumpAssigner(pitch=0.5, rings=2).assign(p)


class TestWireTechnology:
    def test_zero_length_has_driver_delay_only(self):
        tech = WireTechnology()
        d0 = tech.elmore_delay_ns(0.0)
        expected = 0.69 * tech.driver_resistance * tech.load_capacitance / 1000
        assert d0 == pytest.approx(expected)

    def test_delay_monotone_in_length(self):
        tech = WireTechnology()
        delays = [tech.elmore_delay_ns(l) for l in (0.0, 5.0, 10.0, 20.0)]
        assert delays == sorted(delays)

    def test_delay_superlinear(self):
        """Distributed RC: doubling length more than doubles wire delay."""
        tech = WireTechnology(driver_resistance=0.0, load_capacitance=0.0)
        assert tech.elmore_delay_ns(20.0) > 2.0 * tech.elmore_delay_ns(10.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            WireTechnology(resistance_per_mm=-1.0)
        with pytest.raises(ValueError):
            WireTechnology().elmore_delay_ns(-1.0)


class TestEstimateDelays:
    def test_per_net_results(self, assignment):
        delays = estimate_delays(assignment)
        assert {d.net_name for d in delays} == {"near", "far"}
        for d in delays:
            assert isinstance(d, NetDelay)
            assert d.max_delay_ns >= d.mean_delay_ns > 0.0
            assert d.max_length_mm > 0.0

    def test_far_link_is_slower(self, assignment):
        delays = {d.net_name: d for d in estimate_delays(assignment)}
        assert delays["far"].max_delay_ns > delays["near"].max_delay_ns

    def test_worst_net(self, assignment):
        worst = worst_net_delay(assignment)
        assert worst.net_name == "far"

    def test_empty_assignment_rejected(self):
        from repro.bumps.assign import BumpAssignment

        with pytest.raises(ValueError):
            worst_net_delay(BumpAssignment())

    def test_faster_technology_lowers_delay(self, assignment):
        slow = estimate_delays(assignment, WireTechnology())
        fast = estimate_delays(
            assignment,
            WireTechnology(resistance_per_mm=0.2, capacitance_per_mm=0.1),
        )
        for s, f in zip(slow, fast):
            assert f.max_delay_ns < s.max_delay_ns


class TestCurves:
    def test_csv_roundtrip(self, tmp_path):
        from repro.experiments.curves import history_to_csv

        history = [
            {"epoch": 0, "mean_reward": -10.0, "note": "x"},
            {"epoch": 1, "mean_reward": -9.0, "note": "y"},
        ]
        path = tmp_path / "curve.csv"
        history_to_csv(history, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "epoch,mean_reward"
        assert lines[2].startswith("1,")

    def test_csv_empty_rejected(self, tmp_path):
        from repro.experiments.curves import history_to_csv

        with pytest.raises(ValueError):
            history_to_csv([], tmp_path / "x.csv")

    def test_ascii_curve_shape(self):
        from repro.experiments.curves import ascii_curve

        art = ascii_curve([1, 2, 3, 4, 3, 5], width=30, height=6, label="demo")
        assert "demo" in art
        assert art.count("|") == 12  # 6 rows x 2 borders
        assert "*" in art

    def test_ascii_curve_needs_points(self):
        from repro.experiments.curves import ascii_curve

        with pytest.raises(ValueError):
            ascii_curve([1.0])
