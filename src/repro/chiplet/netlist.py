"""Inter-chiplet connectivity.

A net is a bundle of ``wires`` point-to-point connections between two
chiplets (2.5D links are overwhelmingly die-to-die parallel buses, which
is also how TAP-2.5D models them).  The microbump assigner expands a net
into individual bump pairs; quick estimators use ``wires`` as a weight on
the center-to-center distance.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Net"]


@dataclass(frozen=True)
class Net:
    """A weighted two-pin bundle between chiplets ``src`` and ``dst``.

    Attributes
    ----------
    src, dst:
        Names of the connected chiplets (order carries no meaning).
    wires:
        Number of physical wires in the bundle (>= 1).
    name:
        Optional label for reports.
    """

    src: str
    dst: str
    wires: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"net connects {self.src!r} to itself")
        if self.wires < 1:
            raise ValueError("net needs at least one wire")

    def endpoints(self) -> tuple:
        """The two chiplet names, in declaration order."""
        return (self.src, self.dst)

    def other(self, chiplet_name: str) -> str:
        """The endpoint that is not ``chiplet_name``."""
        if chiplet_name == self.src:
            return self.dst
        if chiplet_name == self.dst:
            return self.src
        raise ValueError(f"{chiplet_name!r} is not an endpoint of this net")

    def touches(self, chiplet_name: str) -> bool:
        return chiplet_name in (self.src, self.dst)
