"""Episode storage and generalized advantage estimation.

Floorplanning episodes are short (one step per chiplet) and the
extrinsic reward is terminal-only; RND adds a per-step intrinsic bonus.
The buffer collects complete episodes, computes GAE(lambda) per episode,
and flattens everything into arrays for the PPO update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Episode", "RolloutBatch", "RolloutBuffer"]


@dataclass
class Episode:
    """One sequential-placement episode."""

    observations: list = field(default_factory=list)  # (C, G, G) arrays
    masks: list = field(default_factory=list)  # (A,) bool arrays
    actions: list = field(default_factory=list)  # int
    log_probs: list = field(default_factory=list)  # float
    values: list = field(default_factory=list)  # float
    rewards: list = field(default_factory=list)  # extrinsic, usually terminal

    def add_step(self, obs, mask, action, log_prob, value, reward=0.0) -> None:
        self.observations.append(np.asarray(obs))
        self.masks.append(np.asarray(mask, dtype=bool))
        self.actions.append(int(action))
        self.log_probs.append(float(log_prob))
        self.values.append(float(value))
        self.rewards.append(float(reward))

    def set_terminal_reward(self, reward: float) -> None:
        """Overwrite the last step's extrinsic reward."""
        if not self.rewards:
            raise RuntimeError("episode has no steps")
        self.rewards[-1] = float(reward)

    @property
    def length(self) -> int:
        return len(self.actions)

    @property
    def total_reward(self) -> float:
        return float(sum(self.rewards))


@dataclass
class RolloutBatch:
    """Flat arrays ready for the PPO update."""

    observations: np.ndarray  # (T, C, G, G)
    masks: np.ndarray  # (T, A)
    actions: np.ndarray  # (T,)
    old_log_probs: np.ndarray  # (T,)
    advantages: np.ndarray  # (T,)
    returns: np.ndarray  # (T,)
    old_values: np.ndarray  # (T,)

    @property
    def size(self) -> int:
        return len(self.actions)

    def minibatches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled minibatch views."""
        order = rng.permutation(self.size)
        for start in range(0, self.size, batch_size):
            idx = order[start : start + batch_size]
            yield RolloutBatch(
                observations=self.observations[idx],
                masks=self.masks[idx],
                actions=self.actions[idx],
                old_log_probs=self.old_log_probs[idx],
                advantages=self.advantages[idx],
                returns=self.returns[idx],
                old_values=self.old_values[idx],
            )


class RolloutBuffer:
    """Collects episodes, computes GAE, emits a normalized batch.

    Parameters
    ----------
    gamma:
        Discount factor (episodes are short; 1.0 and 0.99 both work).
    gae_lambda:
        GAE mixing parameter.
    normalize_advantages:
        Standardize advantages across the batch (PPO staple).
    """

    def __init__(
        self,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        normalize_advantages: bool = True,
    ):
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self.normalize_advantages = normalize_advantages
        self.episodes: list = []

    def add_episode(self, episode: Episode, intrinsic_rewards=None) -> None:
        """Store an episode, optionally adding per-step intrinsic rewards."""
        if episode.length == 0:
            raise ValueError("cannot add an empty episode")
        rewards = np.array(episode.rewards, dtype=np.float64)
        if intrinsic_rewards is not None:
            intrinsic = np.asarray(intrinsic_rewards, dtype=np.float64)
            if intrinsic.shape != rewards.shape:
                raise ValueError("intrinsic rewards must match episode length")
            rewards = rewards + intrinsic
        self.episodes.append((episode, rewards))

    def clear(self) -> None:
        self.episodes.clear()

    @property
    def n_steps(self) -> int:
        return sum(ep.length for ep, _ in self.episodes)

    def compute(self) -> RolloutBatch:
        """GAE over every stored episode, flattened into one batch."""
        if not self.episodes:
            raise RuntimeError("no episodes collected")
        all_obs, all_masks, all_actions = [], [], []
        all_log_probs, all_adv, all_ret, all_val = [], [], [], []
        for episode, rewards in self.episodes:
            values = np.array(episode.values, dtype=np.float64)
            advantages = self._gae(rewards, values)
            returns = advantages + values
            all_obs.extend(episode.observations)
            all_masks.extend(episode.masks)
            all_actions.extend(episode.actions)
            all_log_probs.extend(episode.log_probs)
            all_adv.append(advantages)
            all_ret.append(returns)
            all_val.append(values)
        advantages = np.concatenate(all_adv)
        if self.normalize_advantages and len(advantages) > 1:
            advantages = (advantages - advantages.mean()) / (
                advantages.std() + 1e-8
            )
        return RolloutBatch(
            observations=np.stack(all_obs),
            masks=np.stack(all_masks),
            actions=np.array(all_actions, dtype=np.int64),
            old_log_probs=np.array(all_log_probs, dtype=np.float64),
            advantages=advantages,
            returns=np.concatenate(all_ret),
            old_values=np.concatenate(all_val),
        )

    def _gae(self, rewards: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Terminal-bootstrap-free GAE (episodes always end)."""
        T = len(rewards)
        advantages = np.zeros(T)
        last = 0.0
        for t in reversed(range(T)):
            next_value = values[t + 1] if t + 1 < T else 0.0
            delta = rewards[t] + self.gamma * next_value - values[t]
            last = delta + self.gamma * self.gae_lambda * last
            advantages[t] = last
        return advantages
