"""RLPlanner agent: actor-critic network and PPO training loop."""

from repro.agent.networks import ActorCritic
from repro.agent.trainer import RLPlannerTrainer, TrainerConfig, TrainingResult

__all__ = ["ActorCritic", "RLPlannerTrainer", "TrainerConfig", "TrainingResult"]
