"""Axis-aligned rectangles in millimetres.

The floorplanner, the bump assigner and the thermal solver all reason
about chiplet footprints as rectangles; this module is the single source
of truth for overlap, containment and distance semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Rect"]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x, x+w) x [y, y+h)``.

    Attributes
    ----------
    x, y:
        Lower-left corner in mm.
    w, h:
        Width and height in mm; must be positive.
    """

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError(f"Rect needs positive size, got w={self.w}, h={self.h}")

    # -- derived coordinates -------------------------------------------------

    @property
    def x2(self) -> float:
        """Right edge (exclusive)."""
        return self.x + self.w

    @property
    def y2(self) -> float:
        """Top edge (exclusive)."""
        return self.y + self.h

    @property
    def cx(self) -> float:
        """Center x."""
        return self.x + self.w / 2.0

    @property
    def cy(self) -> float:
        """Center y."""
        return self.y + self.h / 2.0

    @property
    def center(self) -> tuple:
        return (self.cx, self.cy)

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def aspect(self) -> float:
        """Aspect ratio width/height."""
        return self.w / self.h

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_center(cls, cx: float, cy: float, w: float, h: float) -> "Rect":
        """Build a rectangle from its center point."""
        return cls(cx - w / 2.0, cy - h / 2.0, w, h)

    @classmethod
    def from_corners(cls, x1: float, y1: float, x2: float, y2: float) -> "Rect":
        """Build from two opposite corners (any order)."""
        lo_x, hi_x = min(x1, x2), max(x1, x2)
        lo_y, hi_y = min(y1, y2), max(y1, y2)
        return cls(lo_x, lo_y, hi_x - lo_x, hi_y - lo_y)

    # -- transforms ----------------------------------------------------------

    def moved_to(self, x: float, y: float) -> "Rect":
        """Same size, lower-left corner at (x, y)."""
        return Rect(x, y, self.w, self.h)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def rotated(self) -> "Rect":
        """90-degree rotation about the lower-left corner (w/h swapped)."""
        return Rect(self.x, self.y, self.h, self.w)

    def inflated(self, margin: float) -> "Rect":
        """Grow every side outward by ``margin`` (may not go non-positive)."""
        return Rect(
            self.x - margin, self.y - margin, self.w + 2 * margin, self.h + 2 * margin
        )

    # -- predicates ----------------------------------------------------------

    def overlaps(self, other: "Rect") -> bool:
        """True when the open interiors intersect (abutment is not overlap)."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def contains_rect(self, other: "Rect", tol: float = 1e-9) -> bool:
        """True when ``other`` lies fully inside (edges may coincide).

        ``tol`` (mm) absorbs float round-off from width/height storage;
        1e-9 mm is far below any manufacturable feature size.
        """
        return (
            other.x >= self.x - tol
            and other.y >= self.y - tol
            and other.x2 <= self.x2 + tol
            and other.y2 <= self.y2 + tol
        )

    def contains_point(self, px: float, py: float) -> bool:
        """Half-open containment: lower/left edges in, upper/right out."""
        return self.x <= px < self.x2 and self.y <= py < self.y2

    # -- measures ------------------------------------------------------------

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap region (0.0 when disjoint)."""
        dx = min(self.x2, other.x2) - max(self.x, other.x)
        dy = min(self.y2, other.y2) - max(self.y, other.y)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy

    def center_distance(self, other: "Rect") -> float:
        """Euclidean distance between centers (mm)."""
        return math.hypot(self.cx - other.cx, self.cy - other.cy)

    def center_manhattan(self, other: "Rect") -> float:
        """Manhattan distance between centers (mm)."""
        return abs(self.cx - other.cx) + abs(self.cy - other.cy)

    def gap(self, other: "Rect") -> float:
        """Smallest axis gap between boundaries; 0.0 when touching/overlapping.

        This is the Chebyshev-style clearance used for minimum-spacing
        design rules between chiplets.
        """
        gx = max(max(other.x - self.x2, self.x - other.x2), 0.0)
        gy = max(max(other.y - self.y2, self.y - other.y2), 0.0)
        if gx == 0.0 and gy == 0.0:
            return 0.0
        return math.hypot(gx, gy)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect.from_corners(
            min(self.x, other.x),
            min(self.y, other.y),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )
