"""Case study: floorplanning the Ascend 910 package.

A real accelerator with a dominant compute die, HBM stacks that want to
hug it (short, wide buses) and two zero-power dummy dies that only get
in the way — a nice stress test of the action mask on a tightly packed
interposer.

Run:
    python examples/ascend910_case_study.py
"""

from repro.agent import RLPlannerTrainer, TrainerConfig
from repro.env import EnvConfig, FloorplanEnv
from repro.experiments.runner import ExperimentBudget, build_evaluators
from repro.systems import get_benchmark
from repro.thermal import GridThermalSolver
from repro.viz import render_floorplan, render_thermal_map


def main() -> None:
    spec = get_benchmark("ascend910")
    print(spec.description)
    print(f"interposer {spec.system.interposer.width:g} x "
          f"{spec.system.interposer.height:g} mm, "
          f"utilization {spec.system.utilization:.0%}")

    budget = ExperimentBudget(rl_epochs=30)
    evaluators = build_evaluators(spec, budget)

    env = FloorplanEnv(
        spec.system, evaluators["reward_fast"], EnvConfig(grid_size=budget.grid_size)
    )
    trainer = RLPlannerTrainer(
        env,
        TrainerConfig(
            epochs=budget.rl_epochs,
            episodes_per_epoch=budget.episodes_per_epoch,
            use_rnd=True,  # exploration helps on tight packings
            seed=0,
            log_every=10,
        ),
    )
    result = trainer.train()
    breakdown = result.best_breakdown
    print(
        f"\nbest: reward {result.best_reward:.4f}, "
        f"WL {breakdown.wirelength:.0f} mm, T {breakdown.max_temperature_c:.2f} C "
        f"(paper's RLPlanner: -7.41, 18130 mm, 77.12 C)"
    )
    print(f"deadlocked episodes during training: {result.deadlock_count}")
    print()
    print(render_floorplan(result.best_placement))

    # Verify the winner against the ground-truth solver and render heat.
    solver = GridThermalSolver(spec.system.interposer, spec.thermal_config)
    thermal = solver.evaluate(result.best_placement)
    print(
        f"\nground-truth max temperature: {thermal.max_temperature_celsius:.2f} C "
        f"(fast model said {breakdown.max_temperature_c:.2f} C)"
    )
    chip_layer = thermal.grid_temperatures[
        spec.thermal_config.stack.chiplet_layer_index
    ]
    print(render_thermal_map(chip_layer, width=56, height=22))


if __name__ == "__main__":
    main()
