"""Random-search baseline: best of N random legal placements."""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.tap25d import PlacerResult
from repro.chiplet import ChipletSystem, Placement
from repro.geometry import Rect
from repro.reward import RewardCalculator

__all__ = ["random_search", "random_legal_placement"]


def random_legal_placement(
    system: ChipletSystem,
    rng: np.random.Generator,
    max_tries: int = 2000,
    allow_rotation: bool = True,
) -> Placement:
    """Rejection-sample a placement satisfying bounds and spacing.

    Raises
    ------
    RuntimeError
        When no legal sample is found within ``max_tries`` attempts
        (over-packed systems).
    """
    interposer = system.interposer
    spacing = interposer.min_spacing
    # Placing large dies first raises the success rate enormously on
    # tightly packed systems (Ascend 910 is ~60 % utilization).
    order = sorted(system.chiplets, key=lambda c: -c.area)
    for _ in range(max_tries):
        placed = {}
        rotations = {}
        failed = False
        for chiplet in order:
            rotated = bool(
                allow_rotation and chiplet.rotatable and rng.random() < 0.5
            )
            w = chiplet.height if rotated else chiplet.width
            h = chiplet.width if rotated else chiplet.height
            if w > interposer.width or h > interposer.height:
                failed = True
                break
            placed_ok = False
            for _ in range(150):
                x = rng.uniform(0.0, interposer.width - w)
                y = rng.uniform(0.0, interposer.height - h)
                rect = Rect(x, y, w, h)
                if all(
                    rect.gap(other) >= spacing and not rect.overlaps(other)
                    for other in placed.values()
                ):
                    placed[chiplet.name] = rect
                    rotations[chiplet.name] = rotated
                    placed_ok = True
                    break
            if not placed_ok:
                failed = True
                break
        if not failed:
            placement = Placement(system)
            for name, rect in placed.items():
                placement.place(name, rect.x, rect.y, rotations[name])
            return placement
    raise RuntimeError(
        f"could not sample a legal placement for {system.name!r} "
        f"within {max_tries} tries"
    )


def random_search(
    system: ChipletSystem,
    reward_calculator: RewardCalculator,
    n_samples: int = 100,
    seed: int = 0,
    time_limit: float | None = None,
    batch_size: int = 1,
) -> PlacerResult:
    """Evaluate ``n_samples`` random legal placements; return the best.

    ``batch_size > 1`` draws the same placement sequence but scores
    ``batch_size`` candidates per vectorized
    :meth:`~repro.reward.RewardCalculator.evaluate_many` call —
    identical search results (to float rounding), several times the
    evaluation throughput on the fast thermal model.  ``batch_size=1``
    is the original sequential loop, kept bit-for-bit.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    if batch_size > 1:
        return _random_search_batched(
            system,
            reward_calculator,
            n_samples,
            rng,
            start,
            time_limit,
            batch_size,
        )
    best_breakdown = None
    best_placement = None
    evaluations = 0
    for _ in range(n_samples):
        if time_limit is not None and time.perf_counter() - start > time_limit:
            break
        placement = random_legal_placement(system, rng)
        breakdown = reward_calculator.evaluate(placement)
        evaluations += 1
        if best_breakdown is None or breakdown.reward > best_breakdown.reward:
            best_breakdown = breakdown
            best_placement = placement
    if best_placement is None:
        raise RuntimeError("random search evaluated no placements")
    return PlacerResult(
        placement=best_placement,
        breakdown=best_breakdown,
        n_evaluations=evaluations,
        elapsed=time.perf_counter() - start,
    )


def _random_search_batched(
    system: ChipletSystem,
    reward_calculator: RewardCalculator,
    n_samples: int,
    rng: np.random.Generator,
    start: float,
    time_limit: float | None,
    batch_size: int,
) -> PlacerResult:
    """Batched scoring loop of :func:`random_search`."""
    best_reward = -np.inf
    best_placement = None
    evaluations = 0
    while evaluations < n_samples:
        if time_limit is not None and time.perf_counter() - start > time_limit:
            break
        batch = [
            random_legal_placement(system, rng)
            for _ in range(min(batch_size, n_samples - evaluations))
        ]
        rewards = reward_calculator.evaluate_many(batch)
        evaluations += len(batch)
        winner = int(np.argmax(rewards))
        if rewards[winner] > best_reward:
            best_reward = float(rewards[winner])
            best_placement = batch[winner]
    if best_placement is None:
        raise RuntimeError("random search evaluated no placements")
    return PlacerResult(
        placement=best_placement,
        breakdown=reward_calculator.evaluate(best_placement),
        n_evaluations=evaluations,
        elapsed=time.perf_counter() - start,
    )
