"""Micro-benchmarks of the performance-critical components.

Not a paper table, but the numbers that explain the tables: microbump
assignment, action-mask computation, observation encoding, the CNN
forward/backward pass and a full PPO update.
"""

import numpy as np
import pytest

from repro.agent import ActorCritic
from repro.baselines.random_search import random_legal_placement
from repro.bumps import BumpAssigner, estimate_wirelength
from repro.env import ObservationBuilder, feasible_cells
from repro.geometry import PlacementGrid
from repro.nn import Adam
from repro.rl import Episode, PPOConfig, PPOUpdater, RolloutBuffer
from repro.systems import get_benchmark
from repro.utils import new_rng


@pytest.fixture(scope="module")
def placed_multi_gpu():
    spec = get_benchmark("multi_gpu")
    placement = random_legal_placement(
        spec.system, new_rng(1), allow_rotation=False
    )
    return spec, placement


def test_bench_bump_assignment_greedy(benchmark, placed_multi_gpu):
    """Per-reward-evaluation bump assignment (grouped wires)."""
    _, placement = placed_multi_gpu
    assigner = BumpAssigner(wire_group_size=8)
    assignment = benchmark(assigner.assign, placement)
    assert assignment.total_wirelength > 0


def test_bench_bump_assignment_hungarian(benchmark, placed_multi_gpu):
    _, placement = placed_multi_gpu
    assigner = BumpAssigner(wire_group_size=8, method="hungarian")
    assignment = benchmark(assigner.assign, placement)
    assert assignment.total_wirelength > 0


def test_bench_wirelength_estimate(benchmark, placed_multi_gpu):
    _, placement = placed_multi_gpu
    total = benchmark(estimate_wirelength, placement)
    assert total > 0


def test_bench_action_mask(benchmark, placed_multi_gpu):
    spec, placement = placed_multi_gpu
    grid = PlacementGrid(55.0, 55.0, 32, 32)
    rects = list(placement.footprints().values())[:8]
    mask = benchmark(feasible_cells, grid, 12.0, 12.0, rects, 0.2)
    assert mask.shape == (32, 32)


def test_bench_observation_encoding(benchmark, placed_multi_gpu):
    spec, placement = placed_multi_gpu
    grid = PlacementGrid(55.0, 55.0, 32, 32)
    builder = ObservationBuilder(spec.system, grid)
    obs = benchmark(builder.build, placement, "gpu0")
    assert obs.shape == builder.shape


def test_bench_network_forward(benchmark):
    rng = np.random.default_rng(0)
    net = ActorCritic((7, 32, 32), 1024, rng=rng)
    obs = rng.normal(size=(16, 7, 32, 32))
    masks = np.ones((16, 1024), bool)

    def forward():
        return net.evaluate(obs, masks)

    dist, values = benchmark(forward)
    assert values.shape == (16,)


def test_bench_ppo_update(benchmark):
    rng = np.random.default_rng(0)
    net = ActorCritic((7, 24, 24), 576, channels=(8, 16, 16), rng=rng)
    updater = PPOUpdater(
        net, Adam(net.parameters(), lr=3e-4), PPOConfig(minibatch_size=32)
    )
    buffer = RolloutBuffer()
    for _ in range(8):
        episode = Episode()
        for _ in range(8):
            episode.add_step(
                rng.normal(size=(7, 24, 24)),
                np.ones(576, bool),
                int(rng.integers(576)),
                -6.3,
                0.0,
            )
        episode.set_terminal_reward(-10.0)
        buffer.add_episode(episode)
    batch = buffer.compute()
    stats = benchmark.pedantic(
        updater.update, args=(batch, rng), rounds=2, iterations=1
    )
    assert stats["n_updates"] >= 1
