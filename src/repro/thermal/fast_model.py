"""Physics-informed fast thermal model (the paper's Section II-C).

The package RC network is linear and time-invariant, so steady-state
temperature rises superpose cell by cell:

    T(cell) = T_amb + sum_over_dies_j  P_j * R_j(cell)

where ``R_j(cell)`` is die j's rise per watt at that location.  The model
tabulates that response once per die size (the characterization runs the
ground-truth grid solver):

* **self table** — the paper's "2D self-thermal resistance table":
  hottest-cell rise per watt of a die placed at a 2D grid of positions
  (edge proximity raises it), spline-interpolated at query time;
* **self profile** — normalized rise field *under* the die (hottest cell
  = 1.0), so the self term can be evaluated per cell, not just at peak;
* **mutual table** — the paper's "1D table with respect to the distance
  between power source and grid location": rise per source watt binned
  radially by distance from the source center.  Because the shared heat
  sink gives the field a source-position-dependent far-field offset (an
  edge-placed die heats its neighbourhood more and the far corner less),
  one radial profile is stored *per characterized source position* —
  the same 2D position grid the self table uses — and profiles are
  bilinearly blended for the actual source position at query time.

A die's predicted temperature is the maximum over its footprint sample
cells of (self profile * self peak * P_i + aggregate mutual field), which
matches how the solver reports per-die temperatures (hottest covered
cell).  Evaluation is a handful of table lookups — the >100x speedup over
a full sparse solve.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
from scipy.interpolate import RectBivariateSpline

from repro.chiplet import Placement
from repro.thermal.config import ThermalConfig
from repro.thermal.result import ThermalResult

__all__ = [
    "SizeKey",
    "SizeTables",
    "ResistanceTables",
    "FastThermalModel",
    "size_key",
    "PEAK_TEMP_MAX_ERROR_C",
    "PEAK_TEMP_MEAN_ERROR_C",
    "CHIPLET_TEMP_MAX_ERROR_C",
    "CHIPLET_TEMP_MEAN_ERROR_C",
]

_SIZE_QUANTUM = 1e-3  # mm; sizes matching to 1 um share a table

# The paper's accuracy envelope for the surrogate (Table II reports
# ~0.25 degC mean error against HotSpot with worst cases below ~2 degC).
# The golden thermal regression test asserts the characterized model
# stays inside these bounds against the grid solver, so a future solver
# or characterization change that silently degrades the surrogate fails
# loudly instead of skewing Table I/III reproductions.
PEAK_TEMP_MAX_ERROR_C = 2.0
PEAK_TEMP_MEAN_ERROR_C = 0.7

# Per-chiplet envelope, pinned by the differential harness
# (tests/test_thermal_differential.py) across every bundled benchmark
# system.  Individual die temperatures are allowed a wider band than the
# package peak: the radial mutual model is coarsest for a low-power die
# sitting in a hot neighbour's near field (the victim's own rise is
# small, so the mutual approximation error dominates), while the peak
# die — the only quantity the reward consumes — is self-term dominated
# and stays inside the paper's envelope above.
CHIPLET_TEMP_MAX_ERROR_C = 6.0
CHIPLET_TEMP_MEAN_ERROR_C = 1.0


def size_key(width: float, height: float) -> tuple:
    """Quantized (w, h) used to index characterization tables."""
    return (round(width / _SIZE_QUANTUM), round(height / _SIZE_QUANTUM))


SizeKey = tuple


def _bilinear_blend(xs: np.ndarray, ys: np.ndarray, table: np.ndarray, x, y):
    """Bilinear combination over the first two axes of ``table``.

    ``table`` has shape ``(len(ys), len(xs), ...)``; the result keeps the
    trailing axes.  Queries are clamped to the sampled range.
    """
    x = float(np.clip(x, xs[0], xs[-1]))
    y = float(np.clip(y, ys[0], ys[-1]))
    ix = int(np.clip(np.searchsorted(xs, x) - 1, 0, max(len(xs) - 2, 0)))
    iy = int(np.clip(np.searchsorted(ys, y) - 1, 0, max(len(ys) - 2, 0)))
    if len(xs) == 1:
        fx, ix1 = 0.0, ix
    else:
        fx = (x - xs[ix]) / (xs[ix + 1] - xs[ix])
        ix1 = ix + 1
    if len(ys) == 1:
        fy, iy1 = 0.0, iy
    else:
        fy = (y - ys[iy]) / (ys[iy + 1] - ys[iy])
        iy1 = iy + 1
    return (
        table[iy, ix] * (1 - fx) * (1 - fy)
        + table[iy, ix1] * fx * (1 - fy)
        + table[iy1, ix] * (1 - fx) * fy
        + table[iy1, ix1] * fx * fy
    )


def _interp_rows(x: np.ndarray, xs: np.ndarray, fp_rows: np.ndarray) -> np.ndarray:
    """Row-wise linear interpolation: row ``i`` of ``x`` against ``fp_rows[i]``.

    All rows share the sample grid ``xs`` (ascending); queries outside it
    clamp to the end values, like :func:`np.interp`.  Purely elementwise,
    so each row's result is independent of the rest of the batch.
    """
    idx = np.minimum(
        np.maximum(np.searchsorted(xs, x) - 1, 0), len(xs) - 2
    )
    x_lo = xs[idx]
    frac = np.minimum(np.maximum((x - x_lo) / (xs[idx + 1] - x_lo), 0.0), 1.0)
    lo = np.take_along_axis(fp_rows, idx, axis=-1)
    hi = np.take_along_axis(fp_rows, idx + 1, axis=-1)
    return lo + (hi - lo) * frac


def _bilinear_field(
    xs: np.ndarray, ys: np.ndarray, field: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Vectorized bilinear sampling of a 2D field at ``(n, 2)`` points.

    One-shot form of :class:`_BilinearStencil` (which holds the index
    math when the same points sample several fields); sharing the
    implementation keeps the two paths bitwise interchangeable.
    """
    return _BilinearStencil(xs, ys, points).sample(field)


class _BilinearStencil:
    """Reusable index/fraction terms of :func:`_bilinear_field`.

    The anisotropy grids (``delta_xs``/``delta_ys``) are crops of the one
    shared solver grid, so every source die samples the same lattice at
    the same points within a batch — the clip/searchsorted half of the
    bilinear lookup can be computed once per point set and reused across
    sources, leaving only the per-field gather.  ``sample`` multiplies in
    exactly :func:`_bilinear_field`'s association order, so results are
    bitwise identical.
    """

    __slots__ = ("xs", "ys", "ix", "iy", "ix1", "iy1", "fx", "fy")

    def __init__(self, xs: np.ndarray, ys: np.ndarray, points: np.ndarray):
        self.xs = xs
        self.ys = ys
        px = np.minimum(np.maximum(points[:, 0], xs[0]), xs[-1])
        py = np.minimum(np.maximum(points[:, 1], ys[0]), ys[-1])
        ix = np.minimum(
            np.maximum(np.searchsorted(xs, px) - 1, 0), max(len(xs) - 2, 0)
        )
        iy = np.minimum(
            np.maximum(np.searchsorted(ys, py) - 1, 0), max(len(ys) - 2, 0)
        )
        if len(xs) > 1:
            self.fx = (px - xs[ix]) / (xs[ix + 1] - xs[ix])
            self.ix1 = ix + 1
        else:
            self.fx = np.zeros_like(px)
            self.ix1 = ix
        if len(ys) > 1:
            self.fy = (py - ys[iy]) / (ys[iy + 1] - ys[iy])
            self.iy1 = iy + 1
        else:
            self.fy = np.zeros_like(py)
            self.iy1 = iy
        self.ix = ix
        self.iy = iy

    def matches(self, xs: np.ndarray, ys: np.ndarray) -> bool:
        if self.xs is xs and self.ys is ys:
            return True
        return np.array_equal(self.xs, xs) and np.array_equal(self.ys, ys)

    def sample(self, field: np.ndarray) -> np.ndarray:
        return (
            field[self.iy, self.ix] * (1 - self.fx) * (1 - self.fy)
            + field[self.iy, self.ix1] * self.fx * (1 - self.fy)
            + field[self.iy1, self.ix] * (1 - self.fx) * self.fy
            + field[self.iy1, self.ix1] * self.fx * self.fy
        )


@dataclass
class SizeTables:
    """Characterized thermal responses for one die size.

    Attributes
    ----------
    width, height:
        Die size in mm.
    xs, ys:
        Center-position sample coordinates (mm) of the self table.
    r_self:
        Peak (hottest-cell) self resistance K/W, shape ``(len(ys), len(xs))``.
    mut_distances:
        Bin-center distances (mm) of the mutual table.
    r_mutual:
        Mutual resistance K/W, shape ``(len(ys), len(xs), len(mut_distances))``
        — one radial profile per characterized source position.
    profile:
        Normalized self-rise field under the die, shape ``(nv, nu)`` over
        a uniform grid of relative positions; max value 1.0.
    delta_xs, delta_ys:
        Interposer-frame cell coordinates of the anisotropy correction.
    mut_delta:
        Source-position-averaged residual field (K/W) of the radial
        model, shape ``(len(delta_ys), len(delta_xs))``: cells near the
        package center run slightly hotter than the radial mean, edge
        cells cooler.  Added per victim location at query time.
    """

    width: float
    height: float
    xs: np.ndarray
    ys: np.ndarray
    r_self: np.ndarray
    mut_distances: np.ndarray
    r_mutual: np.ndarray
    profile: np.ndarray
    delta_xs: np.ndarray
    delta_ys: np.ndarray
    mut_delta: np.ndarray

    # Rank of the low-order model of the radial profiles' position
    # dependence; 3 modes capture >99 % of the variance in practice.
    _MUTUAL_RANK = 3

    def __post_init__(self) -> None:
        # R_self(x, y) is a smooth convex "bathtub" (higher near edges);
        # a spline fits it far better than bilinear chords, which
        # systematically overestimate the interior.
        kx = min(3, len(self.xs) - 1)
        ky = min(3, len(self.ys) - 1)
        if kx >= 1 and ky >= 1:
            self._self_spline = RectBivariateSpline(
                self.ys, self.xs, self.r_self, kx=ky, ky=kx
            )
        else:
            self._self_spline = None
        # Low-rank position model of the mutual radial profiles: the
        # profiles form a smooth family over source position; SVD modes
        # with spline-interpolated coefficients avoid the systematic
        # overestimate a bilinear blend of the raw profiles produces.
        ny, nx, nd = self.r_mutual.shape
        flat = self.r_mutual.reshape(ny * nx, nd)
        self._mut_mean = flat.mean(axis=0)
        self._mut_modes = None
        self._mut_coef_splines = []
        rank = min(self._MUTUAL_RANK, ny * nx - 1, nd)
        if rank >= 1 and kx >= 1 and ky >= 1:
            u, s, vt = np.linalg.svd(flat - self._mut_mean, full_matrices=False)
            coefs = (u[:, :rank] * s[:rank]).reshape(ny, nx, rank)
            self._mut_modes = vt[:rank]
            self._mut_coef_splines = [
                RectBivariateSpline(self.ys, self.xs, coefs[:, :, k], kx=ky, ky=kx)
                for k in range(rank)
            ]

    def r_self_at(self, cx: float, cy: float) -> float:
        """Interpolated peak self resistance at a die-center position."""
        cx = float(np.clip(cx, self.xs[0], self.xs[-1]))
        cy = float(np.clip(cy, self.ys[0], self.ys[-1]))
        if self._self_spline is not None:
            return float(self._self_spline(cy, cx)[0, 0])
        return float(self.r_self[0, 0])

    def r_self_at_many(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`r_self_at` for one die at many positions.

        Each point is evaluated independently (fitpack is pointwise), so
        results match the scalar method regardless of the batch size.
        """
        cx = np.clip(np.asarray(cx, dtype=np.float64), self.xs[0], self.xs[-1])
        cy = np.clip(np.asarray(cy, dtype=np.float64), self.ys[0], self.ys[-1])
        if self._self_spline is not None:
            return self._self_spline(cy, cx, grid=False)
        return np.full(cx.shape, float(self.r_self[0, 0]))

    def mutual_profile(self, cx: float, cy: float) -> np.ndarray:
        """Radial mutual profile for a source centered at ``(cx, cy)``.

        Combines the SVD position modes; returns an array aligned with
        :attr:`mut_distances`.
        """
        if self._mut_modes is None:
            return _bilinear_blend(self.xs, self.ys, self.r_mutual, cx, cy)
        cx = float(np.clip(cx, self.xs[0], self.xs[-1]))
        cy = float(np.clip(cy, self.ys[0], self.ys[-1]))
        profile = self._mut_mean.copy()
        for k, spline in enumerate(self._mut_coef_splines):
            profile += float(spline(cy, cx)[0, 0]) * self._mut_modes[k]
        return profile

    def mutual_profiles_many(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`mutual_profile`: (n,) positions -> (n, nd).

        Used by the batched evaluator to blend every episode's radial
        profile for one source die in a single pass.
        """
        cx = np.asarray(cx, dtype=np.float64)
        cy = np.asarray(cy, dtype=np.float64)
        if self._mut_modes is None:
            return np.stack(
                [
                    _bilinear_blend(self.xs, self.ys, self.r_mutual, x, y)
                    for x, y in zip(cx, cy)
                ]
            )
        cx = np.clip(cx, self.xs[0], self.xs[-1])
        cy = np.clip(cy, self.ys[0], self.ys[-1])
        profiles = np.broadcast_to(
            self._mut_mean, (len(cx), len(self._mut_mean))
        ).copy()
        for k, spline in enumerate(self._mut_coef_splines):
            coefs = spline(cy, cx, grid=False)
            profiles += coefs[:, None] * self._mut_modes[k][None, :]
        return profiles

    def r_mutual_at(self, distance, cx: float | None = None, cy: float | None = None):
        """Mutual resistance at a distance from a source at ``(cx, cy)``.

        Without a position the position-averaged profile is used.  The
        anisotropy correction is *not* applied here (it depends on the
        victim location, not the distance); see :meth:`mut_delta_at`.
        """
        if cx is None or cy is None:
            radial = self._mut_mean
        else:
            radial = self.mutual_profile(cx, cy)
        return np.interp(distance, self.mut_distances, radial)

    def mut_delta_at(self, points: np.ndarray) -> np.ndarray:
        """Anisotropy correction (K/W) at ``(n, 2)`` victim locations."""
        return _bilinear_field(
            self.delta_xs, self.delta_ys, self.mut_delta, points
        )

    def sample_offsets(self) -> np.ndarray:
        """Die-relative (dx, dy) of the profile sample cells, shape (n, 2).

        Cached after the first call (evaluators query it per placement);
        callers must treat the returned array as read-only.
        """
        cached = getattr(self, "_sample_offsets", None)
        if cached is not None:
            return cached
        nv, nu = self.profile.shape
        us = (np.arange(nu) + 0.5) / nu * self.width
        vs = (np.arange(nv) + 0.5) / nv * self.height
        mu, mv = np.meshgrid(us, vs)
        self._sample_offsets = np.column_stack([mu.ravel(), mv.ravel()])
        return self._sample_offsets


@dataclass
class ResistanceTables:
    """All characterized tables for one package geometry.

    Maps quantized die sizes to :class:`SizeTables`; carries the ambient
    and package identity so mismatched reuse fails loudly.
    """

    ambient: float
    interposer_width: float
    interposer_height: float
    tables: dict = field(default_factory=dict)
    fingerprint: str = ""

    def add(self, size_tables: SizeTables) -> None:
        self.tables[size_key(size_tables.width, size_tables.height)] = size_tables

    def for_size(self, width: float, height: float) -> SizeTables:
        key = size_key(width, height)
        try:
            return self.tables[key]
        except KeyError:
            raise KeyError(
                f"no characterization for die size {width}x{height} mm; "
                f"re-run characterize_tables including this size"
            ) from None

    def has_size(self, width: float, height: float) -> bool:
        return size_key(width, height) in self.tables

    @property
    def n_sizes(self) -> int:
        return len(self.tables)

    # -- persistence ----------------------------------------------------

    def save(self, path) -> None:
        """Write all tables to a single ``.npz`` archive."""
        payload = {}
        meta = {
            "ambient": self.ambient,
            "interposer_width": self.interposer_width,
            "interposer_height": self.interposer_height,
            "fingerprint": self.fingerprint,
            "sizes": [],
        }
        for idx, st in enumerate(self.tables.values()):
            meta["sizes"].append({"width": st.width, "height": st.height})
            payload[f"xs_{idx}"] = st.xs
            payload[f"ys_{idx}"] = st.ys
            payload[f"r_self_{idx}"] = st.r_self
            payload[f"mut_d_{idx}"] = st.mut_distances
            payload[f"r_mut_{idx}"] = st.r_mutual
            payload[f"profile_{idx}"] = st.profile
            payload[f"delta_xs_{idx}"] = st.delta_xs
            payload[f"delta_ys_{idx}"] = st.delta_ys
            payload[f"mut_delta_{idx}"] = st.mut_delta
        payload["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(Path(path), **payload)

    @classmethod
    def load(cls, path) -> "ResistanceTables":
        """Inverse of :meth:`save`."""
        with np.load(Path(path)) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
            result = cls(
                ambient=meta["ambient"],
                interposer_width=meta["interposer_width"],
                interposer_height=meta["interposer_height"],
                fingerprint=meta.get("fingerprint", ""),
            )
            for idx, size in enumerate(meta["sizes"]):
                result.add(
                    SizeTables(
                        width=size["width"],
                        height=size["height"],
                        xs=data[f"xs_{idx}"],
                        ys=data[f"ys_{idx}"],
                        r_self=data[f"r_self_{idx}"],
                        mut_distances=data[f"mut_d_{idx}"],
                        r_mutual=data[f"r_mut_{idx}"],
                        profile=data[f"profile_{idx}"],
                        delta_xs=data[f"delta_xs_{idx}"],
                        delta_ys=data[f"delta_ys_{idx}"],
                        mut_delta=data[f"mut_delta_{idx}"],
                    )
                )
        return result


class FastThermalModel:
    """Superposition-based thermal evaluator (drop-in for the solver).

    Parameters
    ----------
    tables:
        Characterized :class:`ResistanceTables` for the package the
        placements will live on.
    config:
        Only ``ambient`` is consulted; defaults to the standard config.
    """

    def __init__(
        self,
        tables: ResistanceTables,
        config: ThermalConfig | None = None,
        incremental: bool = False,
    ):
        self.tables = tables
        self.config = config or ThermalConfig()
        if abs(self.tables.ambient - self.config.ambient) > 1e-6:
            raise ValueError(
                "tables were characterized at a different ambient temperature"
            )
        self.evaluate_count = 0
        # Opt-in single-move fast path: consecutive evaluate() calls that
        # displace/swap/rotate a few dies update only the affected
        # self/mutual coupling terms (O(n) per moved die) instead of
        # rebuilding the full O(n^2) interaction.  Off by default because
        # running sums accumulate ~1e-12-level float drift relative to
        # the full evaluation (bounded by periodic refresh; the exactness
        # test pins it below 1e-9).
        self.incremental = incremental
        self._incremental_state = None

    def evaluate(self, placement: Placement) -> ThermalResult:
        """Predict per-die and maximum temperature for a placement."""
        if self.incremental:
            from repro.thermal.incremental import IncrementalEvaluator

            if (
                self._incremental_state is None
                or self._incremental_state.model is not self
            ):
                self._incremental_state = IncrementalEvaluator(self)
            result = self._incremental_state.evaluate(placement)
            self.evaluate_count += 1
            return result
        return self._evaluate_full(placement)

    def _evaluate_full(self, placement: Placement) -> ThermalResult:
        """The direct (non-incremental) superposition evaluation."""
        start = time.perf_counter()
        footprints = placement.footprints()
        names = list(footprints)
        system = placement.system
        ambient = self.config.ambient
        if not names:
            return ThermalResult({}, ambient, elapsed=time.perf_counter() - start)

        rects = [footprints[n] for n in names]
        powers = np.array([system.chiplet(n).power for n in names])
        die_tables = [self.tables.for_size(r.w, r.h) for r in rects]
        centers = np.array([r.center for r in rects])
        # Blend each source's radial profile for its actual position once.
        radials = [
            st.mutual_profile(rect.cx, rect.cy)
            for st, rect in zip(die_tables, rects)
        ]

        temps = np.empty(len(names))
        for i, rect in enumerate(rects):
            st = die_tables[i]
            # Per-sample-cell self rise (peak resistance shaped by profile).
            self_field = (
                st.r_self_at(rect.cx, rect.cy) * powers[i] * st.profile.ravel()
            )
            # Aggregate mutual field of every other die at the same cells.
            points = st.sample_offsets() + np.array([rect.x, rect.y])
            mutual_field = np.zeros(len(points))
            for j in range(len(names)):
                if j == i or powers[j] <= 0.0:
                    continue
                dist = np.hypot(
                    points[:, 0] - centers[j, 0], points[:, 1] - centers[j, 1]
                )
                mutual_field += (
                    np.interp(dist, die_tables[j].mut_distances, radials[j])
                    + die_tables[j].mut_delta_at(points)
                ) * powers[j]
            temps[i] = ambient + float((self_field + mutual_field).max())

        chiplet_temps = {name: float(t) for name, t in zip(names, temps)}
        self.evaluate_count += 1
        return ThermalResult(
            chiplet_temperatures=chiplet_temps,
            max_temperature=float(temps.max()),
            grid_temperatures=None,
            elapsed=time.perf_counter() - start,
            metadata={"method": "fast_lti"},
        )

    def evaluate_batch(self, placements) -> list:
        """Vectorized :meth:`evaluate` for a batch of placements.

        All spline blends, radial interpolations and anisotropy lookups
        run once per (die, die) pair across the whole batch instead of
        once per placement — the terminal-reward half of the batched
        rollout engine's speedup.  Every per-placement result is
        computed elementwise along the batch axis, so it never depends
        on which other placements share the batch (width invariance).

        The batch must place the same die *set* in every placement (the
        lockstep rollout engine and the multi-chain annealers guarantee
        this; per-die terms are keyed by name, so placement-dict order
        is free to differ); otherwise this falls back to scalar
        evaluation.  Per-result ``elapsed`` is the batch time divided
        evenly.
        """
        placements = list(placements)
        if not placements:
            return []
        start = time.perf_counter()
        core = self._batch_temps(placements)
        if core is None:
            return [self.evaluate(p) for p in placements]
        names, temps = core
        n_b = len(placements)
        self.evaluate_count += n_b
        elapsed = time.perf_counter() - start
        return [
            ThermalResult(
                chiplet_temperatures={
                    name: float(temps[b, k]) for k, name in enumerate(names)
                },
                max_temperature=float(temps[b].max()),
                grid_temperatures=None,
                elapsed=elapsed / n_b,
                metadata={"method": "fast_lti_batch"},
            )
            for b in range(n_b)
        ]

    def max_temperatures(self, placements) -> np.ndarray:
        """Peak package temperature (K) of each placement, vectorized.

        The search-loop hot path: identical temperatures to
        :meth:`evaluate_batch` without materializing per-die dicts or
        :class:`ThermalResult` objects.  Falls back to scalar evaluation
        for heterogeneous batches.
        """
        placements = list(placements)
        if not placements:
            return np.empty(0)
        core = self._batch_temps(placements)
        if core is None:
            return np.array(
                [self.evaluate(p).max_temperature for p in placements]
            )
        _, temps = core
        self.evaluate_count += len(placements)
        return temps.max(axis=1)

    def _batch_temps(self, placements):
        """Vectorized per-die temperatures for a same-die-set batch.

        Returns ``(names, temps)`` with ``temps`` of shape
        ``(n_placements, n_dies)`` in Kelvin, or ``None`` when the batch
        cannot vectorize (empty or differing die sets) and the caller
        must fall back to scalar evaluation.
        """
        positions_list = [p.positions for p in placements]
        names = list(positions_list[0])
        system = placements[0].system
        # Powers and die sizes come from the shared system, so a batch
        # mixing systems (even with matching die names) must fall back
        # to scalar evaluation rather than borrow the first system's.
        if (
            not names
            or any(p.system is not system for p in placements[1:])
            or any(
                pos.keys() != positions_list[0].keys()
                for pos in positions_list[1:]
            )
        ):
            return None
        n_b = len(placements)
        n_d = len(names)
        ambient = self.config.ambient
        chiplets = [system.chiplet(n) for n in names]
        powers = np.array([c.power for c in chiplets])

        # Footprint geometry straight from the raw (x, y, rotated)
        # triples in one bulk conversion — no Rect objects, no
        # per-element numpy writes.  (Multiplying by 0.5 and dividing by
        # 2.0 are both exact, so centers match Rect.cx/cy bitwise.)
        raw = np.array(
            [
                [positions[name] for name in names]
                for positions in positions_list
            ]
        )  # (n_b, n_d, 3): x, y, rotated-flag
        origin = raw[:, :, :2]
        rotated = raw[:, :, 2] != 0.0
        dims = np.array([(c.width, c.height) for c in chiplets])
        size = np.where(rotated[:, :, None], dims[:, ::-1][None], dims[None])
        center = origin + size * 0.5

        # Rotation can differ per placement; partition each die's batch
        # rows by orientation (usually one group — square dies share a
        # characterization table either way).
        die_groups: list = []
        all_rows = np.arange(n_b)
        for i in range(n_d):
            w, h = float(dims[i, 0]), float(dims[i, 1])
            column = rotated[:, i]
            if w == h or not column.any():
                die_groups.append([(self.tables.for_size(w, h), all_rows)])
            elif column.all():
                die_groups.append([(self.tables.for_size(h, w), all_rows)])
            else:
                die_groups.append(
                    [
                        (self.tables.for_size(w, h), np.flatnonzero(~column)),
                        (self.tables.for_size(h, w), np.flatnonzero(column)),
                    ]
                )

        # Concatenate every die's sample cells into one point axis so the
        # mutual field is computed *source-major*: one radial
        # interpolation + one anisotropy lookup per (source die,
        # orientation group) covering ALL victims at once, instead of one
        # per (victim die, source die) pair.  Orientation mixes (multi-
        # chain annealing proposes rotations independently per chain)
        # would otherwise fragment the batch into per-pair row subsets.
        # A die's slice requires an orientation-invariant sample count
        # (profiles of rotated tables are transposed, so this always
        # holds for the bundled characterizations); bail out otherwise.
        counts = []
        for groups in die_groups:
            die_counts = {st.profile.size for st, _ in groups}
            if len(die_counts) != 1:
                return None
            counts.append(die_counts.pop())
        offsets = np.concatenate([[0], np.cumsum(counts)])
        p_tot = int(offsets[-1])

        points = np.empty((n_b, p_tot, 2))
        self_field = np.empty((n_b, p_tot))
        for i in range(n_d):
            sl = slice(offsets[i], offsets[i + 1])
            for st, rows in die_groups[i]:
                points[rows, sl] = (
                    origin[rows, i][:, None, :]
                    + st.sample_offsets()[None, :, :]
                )
                r_self = st.r_self_at_many(
                    center[rows, i, 0], center[rows, i, 1]
                )
                self_field[rows, sl] = (
                    r_self[:, None] * powers[i] * st.profile.ravel()[None, :]
                )

        mutual = np.zeros((n_b, p_tot))
        stencils: dict = {}
        for j in range(n_d):
            if powers[j] <= 0.0:
                continue
            sl_j = slice(offsets[j], offsets[j + 1])
            for st_j, rows in die_groups[j]:
                profiles = st_j.mutual_profiles_many(
                    center[rows, j, 0], center[rows, j, 1]
                )
                pts = points[rows]
                dist = np.hypot(
                    pts[..., 0] - center[rows, j, 0][:, None],
                    pts[..., 1] - center[rows, j, 1][:, None],
                )
                contrib = _interp_rows(dist, st_j.mut_distances, profiles)
                # Anisotropy correction via a shared per-row-set stencil
                # (all sizes crop the same solver grid in practice; the
                # matches() guard rebuilds if one ever doesn't).
                key = rows.tobytes()
                stencil = stencils.get(key)
                if stencil is None or not stencil.matches(
                    st_j.delta_xs, st_j.delta_ys
                ):
                    stencil = _BilinearStencil(
                        st_j.delta_xs, st_j.delta_ys, pts.reshape(-1, 2)
                    )
                    stencils[key] = stencil
                contrib += stencil.sample(st_j.mut_delta).reshape(
                    len(rows), p_tot
                )
                # A die never couples to itself; zeroing (rather than
                # masking) keeps the accumulation elementwise and exact
                # (adding +0.0 is the identity on these fields).
                contrib[:, sl_j] = 0.0
                contrib *= powers[j]
                mutual[rows] += contrib

        temps = np.empty((n_b, n_d))
        for i in range(n_d):
            sl = slice(offsets[i], offsets[i + 1])
            temps[:, i] = ambient + (
                self_field[:, sl] + mutual[:, sl]
            ).max(axis=1)

        return names, temps
