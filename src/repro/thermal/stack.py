"""Layered 2.5D package stack description.

The default stack mirrors the secondary-free HotSpot package for a 2.5D
assembly, bottom to top::

    [board boundary]            (optional convective path, weak)
    interposer   Si    0.10 mm
    bonding      solder 0.07 mm  (C4/microbump + underfill, effective k)
    chiplets     Si/underfill 0.70 mm   <- power injected here
    tim          grease 0.05 mm
    spreader     Cu    1.00 mm
    sink         Al    6.90 mm
    [ambient boundary]          (convective path, strong)

The chiplet layer is *heterogeneous*: cells under a die are silicon,
cells between dies are underfill.  Every other layer is homogeneous.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thermal.materials import MATERIALS, Material

__all__ = ["Layer", "LayerStack", "default_chiplet_stack"]


@dataclass(frozen=True)
class Layer:
    """One slab of the vertical stack.

    Attributes
    ----------
    name:
        Identifier, unique within a stack.
    material:
        Bulk material (chiplet layers blend this with ``fill_material``).
    thickness:
        Slab thickness in mm.
    is_chiplet_layer:
        True for the layer whose in-plane conductivity pattern follows the
        placement and into which chiplet power is injected.
    fill_material:
        Material between dies for the chiplet layer (ignored otherwise).
    periphery_material:
        Material of this layer *outside* the interposer core region (the
        package margin where the spreader/sink overhang); ``None`` means
        the layer's bulk material extends to the package edge.
    """

    name: str
    material: Material
    thickness: float
    is_chiplet_layer: bool = False
    fill_material: Material = MATERIALS["underfill"]
    periphery_material: Material | None = None

    def __post_init__(self) -> None:
        if self.thickness <= 0:
            raise ValueError(f"layer {self.name!r} needs positive thickness")


@dataclass(frozen=True)
class LayerStack:
    """Ordered bottom-to-top collection of layers."""

    layers: tuple

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("stack needs at least one layer")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError("duplicate layer names")
        if sum(layer.is_chiplet_layer for layer in self.layers) != 1:
            raise ValueError("stack needs exactly one chiplet layer")

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def chiplet_layer_index(self) -> int:
        """Index of the power-injection layer."""
        for i, layer in enumerate(self.layers):
            if layer.is_chiplet_layer:
                return i
        raise AssertionError("validated stack lost its chiplet layer")

    @property
    def total_thickness(self) -> float:
        return sum(layer.thickness for layer in self.layers)

    def layer_index(self, name: str) -> int:
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise KeyError(f"no layer {name!r}")


def default_chiplet_stack() -> LayerStack:
    """The default 2.5D package stack described in the module docstring.

    The spreader and sink extend over the whole package area; the
    interposer-level layers turn into organic substrate / molding
    compound beyond the interposer core.
    """
    return LayerStack(
        layers=(
            Layer(
                "interposer",
                MATERIALS["silicon"],
                0.10,
                periphery_material=MATERIALS["fr4"],
            ),
            Layer(
                "bonding",
                MATERIALS["solder"],
                0.07,
                periphery_material=MATERIALS["underfill"],
            ),
            Layer(
                "chiplets",
                MATERIALS["silicon"],
                0.70,
                is_chiplet_layer=True,
                fill_material=MATERIALS["underfill"],
                periphery_material=MATERIALS["underfill"],
            ),
            Layer("tim", MATERIALS["tim"], 0.05),
            Layer("spreader", MATERIALS["copper"], 1.00),
            Layer("sink", MATERIALS["aluminum"], 6.90),
        )
    )
