"""Run-store subsystem: content-addressed results + resume checkpoints."""

from repro.store.runstore import (
    DEFAULT_STORE_DIR,
    STORE_SCHEMA_VERSION,
    RunStore,
    store_key,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "STORE_SCHEMA_VERSION",
    "RunStore",
    "store_key",
]
