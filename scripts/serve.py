"""Run the persistent floorplanning service.

Thin entrypoint over ``repro.cli serve`` (the serve layer itself lives
in ``src/repro/serve/``)::

    PYTHONPATH=src python scripts/serve.py --port 8337

The process loads nothing up front: thermal characterization tables,
``FastThermalModel`` interpolators, ``GridThermalSolver`` ``splu``
factorizations, and policy networks warm up on first use and stay
resident for every later request.  Placement requests memoize through
the content-addressed run store (``--store-dir``): an identical
(system, method, budget) request is answered from the store with zero
evaluator calls, bitwise identical to the first answer — which is
itself bitwise identical to the same request run through ``repro.cli
train``/``sa``.

Send traffic with ``rlplanner submit``, the
:class:`repro.serve.ServeClient`, or plain HTTP (see
``src/repro/serve/server.py`` for the endpoint table).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))
