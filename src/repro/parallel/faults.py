"""Fault classification, retry/backoff policy, and per-job sweep reports.

The scheduler and collector share one model of "what went wrong":

* **Transient** faults — a worker process died (``BrokenProcessPool``,
  :class:`WorkerCrashError`), the OS hiccuped (``OSError`` and its
  subtree, which since Python 3.10 includes ``TimeoutError``), or a
  straggler blew its wall-clock budget (:class:`JobTimeoutError`).
  These do *not* reproduce from the job's inputs; re-running the job on
  a fresh worker is both safe (every job is a pure function of its
  spec) and bitwise-identical (the run store + seeded RNG streams make
  retries free of determinism risk).
* **Deterministic** faults — the job itself raised (``ValueError``,
  ``KeyError``, an assertion...).  Retrying replays the identical
  computation and fails the identical way, so these are never retried:
  they fail fast, or under ``keep_going`` are *quarantined* with their
  dependency-downstream jobs skipped.

:class:`RetryPolicy` holds the knobs (attempt budget, exponential
backoff with **seeded** jitter — deterministic in ``(seed, job_id,
attempt)`` so reruns of a flaky sweep pause identically), and
:class:`SweepReport` records the per-job outcome every fault-tolerant
entry point can hand back: succeeded / retried-then-succeeded /
cached / quarantined / skipped-downstream.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field

__all__ = [
    "JobOutcome",
    "JobTimeoutError",
    "RetryBudget",
    "RetryPolicy",
    "SweepReport",
    "WorkerCrashError",
    "WorkerInitError",
]


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result (signal/exit).

    Transient by classification: the crash is attributed to the
    worker's *environment* (OOM kill, machine hiccup, injected chaos),
    not to the job's inputs — a fresh worker retries it.
    """


class JobTimeoutError(RuntimeError):
    """A job exceeded its wall-clock budget and its worker was killed.

    Transient: stragglers are assumed to be stuck on environment (lost
    I/O, a hung lock), so the job is retried on a fresh worker.
    """


class WorkerInitError(RuntimeError):
    """A worker pool's initializer raised; carries the real traceback.

    Deliberately *deterministic*: every replacement worker would fail
    the same construction, so retrying converts one clear traceback
    into an opaque ``BrokenProcessPool``.  Raising this promptly is the
    whole point — see ``collector._init_worker``.
    """


#: Exception types whose occurrence does not reproduce from the job's
#: inputs.  ``BrokenExecutor`` covers ``BrokenProcessPool``; ``OSError``
#: covers ``TimeoutError``/``ConnectionError`` (Python >= 3.10) plus
#: the usual transient I/O family.
TRANSIENT_EXCEPTIONS = (
    BrokenExecutor,
    WorkerCrashError,
    JobTimeoutError,
    OSError,
    EOFError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule for transiently failing jobs.

    ``max_attempts`` counts *total* executions (1 = never retry).
    Backoff before attempt ``k+1`` is exponential with seeded jitter::

        base * factor**(k-1), capped at ``backoff_max``,
        scaled by (1 + jitter * u),  u = U[0, 1) from (seed, job, k)

    The jitter draw is a pure function of ``(seed, job_id, attempt)``
    (SHA-256, no global RNG), so two runs of the same flaky sweep back
    off identically — fault handling is as reproducible as the jobs.

    Beyond the per-job ``max_attempts``, two optional *sweep-wide*
    ceilings bound how much a pathologically flaky environment can cost
    (a host whose every job fails transiently would otherwise burn
    ``(max_attempts - 1) * backoff`` per job, serially):
    ``sweep_retry_budget`` caps the total number of retries granted
    across the whole sweep, and ``sweep_retry_window_s`` stops granting
    retries once that much wall clock has elapsed since the sweep
    started.  Both are enforced by the mutable per-sweep
    :class:`RetryBudget` the scheduler consults before every retry; a
    denied retry fails the job exactly as an exhausted ``max_attempts``
    would (quarantine under ``keep_going``, raise otherwise), and the
    denial is surfaced in :meth:`SweepReport.summary`.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.5
    seed: int = 0
    sweep_retry_budget: int | None = None
    sweep_retry_window_s: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.sweep_retry_budget is not None and self.sweep_retry_budget < 0:
            raise ValueError("sweep_retry_budget must be >= 0 (None = unbounded)")
        if (
            self.sweep_retry_window_s is not None
            and self.sweep_retry_window_s <= 0
        ):
            raise ValueError(
                "sweep_retry_window_s must be > 0 (None = unbounded)"
            )

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """A policy that classifies but never retries (max_attempts=1)."""
        return cls(max_attempts=1)

    @staticmethod
    def is_transient(error: BaseException) -> bool:
        """Whether ``error`` is environmental (retry) vs reproducible.

        :class:`WorkerInitError` is checked first: it rides transport
        that looks transient but marks a failure every fresh worker
        would reproduce.
        """
        if isinstance(error, WorkerInitError):
            return False
        return isinstance(error, TRANSIENT_EXCEPTIONS)

    def backoff(self, job_id: str, attempt: int) -> float:
        """Seconds to pause before re-running ``job_id``.

        ``attempt`` is the 1-based attempt that just failed.
        Deterministic in ``(seed, job_id, attempt)``.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        token = f"{self.seed}/{job_id}/{attempt}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        uniform = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 + self.jitter * uniform)


class RetryBudget:
    """Mutable per-sweep accounting against a policy's sweep-wide caps.

    One instance lives for one sweep (``run_jobs`` creates it); the
    scheduler calls :meth:`allow` before granting any retry.  With no
    caps configured every call grants, so the default behavior is
    byte-identical to the pre-budget scheduler.  ``clock`` is
    injectable for tests.
    """

    def __init__(self, policy: RetryPolicy, *, clock=time.monotonic):
        self.policy = policy
        self._clock = clock
        self._started = clock()
        self.granted = 0
        self.denied = 0

    def allow(self, job_id: str) -> bool:
        """Whether one more retry fits the sweep budget (and charge it)."""
        cap = self.policy.sweep_retry_budget
        window = self.policy.sweep_retry_window_s
        if cap is not None and self.granted >= cap:
            self.denied += 1
            return False
        if window is not None and self._clock() - self._started > window:
            self.denied += 1
            return False
        self.granted += 1
        return True

    @property
    def exhausted(self) -> bool:
        """Whether at least one retry was denied by the sweep caps."""
        return self.denied > 0

    def describe(self) -> dict:
        """JSON-able snapshot for reports and logs."""
        return {
            "granted": self.granted,
            "denied": self.denied,
            "cap": self.policy.sweep_retry_budget,
            "window_s": self.policy.sweep_retry_window_s,
            "elapsed_s": self._clock() - self._started,
        }


# ----------------------------------------------------------------------
# per-job outcome accounting
# ----------------------------------------------------------------------

#: Outcome statuses, in "how did this job end" order.
STATUS_SUCCEEDED = "succeeded"
STATUS_RETRIED = "retried"  # succeeded, but needed > 1 attempt
STATUS_CACHED = "cached"  # result served from the run store
STATUS_QUARANTINED = "quarantined"  # permanently failed, kept aside
STATUS_SKIPPED = "skipped"  # a dependency was quarantined/skipped


@dataclass
class JobOutcome:
    """How one job ended: status, attempts, and the terminal error."""

    job_id: str
    status: str
    attempts: int = 1
    error: str | None = None
    error_type: str | None = None
    blocked_by: str | None = None

    @classmethod
    def failure(cls, job_id: str, status: str, attempts: int, error):
        return cls(
            job_id=job_id,
            status=status,
            attempts=attempts,
            error=repr(error),
            error_type=type(error).__name__,
        )


class SweepReport:
    """Per-job outcomes of one fault-tolerant sweep.

    ``ok`` is True when every job produced a result (freshly, after
    retries, or from the store).  ``run_experiments.py`` exits nonzero
    on ``not ok`` while still publishing every surviving arm.
    """

    def __init__(self):
        self.outcomes: dict = {}
        # Sweep-wide retry-budget snapshot (RetryBudget.describe()), set
        # by the scheduler when the sweep ran under a budgeted policy.
        self.retry_budget: dict | None = None

    def record(self, outcome: JobOutcome) -> None:
        self.outcomes[outcome.job_id] = outcome

    def attach_retry_budget(self, budget: "RetryBudget") -> None:
        """Record the sweep's final retry-budget accounting."""
        self.retry_budget = budget.describe()

    def _with_status(self, *statuses) -> list:
        return [
            job_id
            for job_id, outcome in self.outcomes.items()
            if outcome.status in statuses
        ]

    @property
    def succeeded(self) -> list:
        return self._with_status(STATUS_SUCCEEDED, STATUS_RETRIED, STATUS_CACHED)

    @property
    def retried(self) -> list:
        return self._with_status(STATUS_RETRIED)

    @property
    def quarantined(self) -> list:
        return self._with_status(STATUS_QUARANTINED)

    @property
    def skipped(self) -> list:
        return self._with_status(STATUS_SKIPPED)

    @property
    def ok(self) -> bool:
        return not self.quarantined and not self.skipped

    def merge(self, other: "SweepReport") -> None:
        """Fold another sweep's outcomes into this report."""
        self.outcomes.update(other.outcomes)
        if other.retry_budget is not None:
            self.retry_budget = other.retry_budget

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "retry_budget": self.retry_budget,
            "jobs": {
                job_id: {
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "error": outcome.error,
                    "error_type": outcome.error_type,
                    "blocked_by": outcome.blocked_by,
                }
                for job_id, outcome in self.outcomes.items()
            },
        }

    def summary(self) -> str:
        """One-paragraph human summary for logs and CLI output."""
        lines = [
            f"sweep report: {len(self.succeeded)} succeeded "
            f"({len(self.retried)} after retries), "
            f"{len(self.quarantined)} quarantined, "
            f"{len(self.skipped)} skipped downstream"
        ]
        if self.retry_budget is not None:
            budget = self.retry_budget
            cap = budget["cap"]
            window = budget["window_s"]
            line = (
                f"  retry budget: {budget['granted']} granted"
                f"{'' if cap is None else f' of {cap}'}"
            )
            if window is not None:
                line += f" within {window:.0f}s"
            if budget["denied"]:
                line += (
                    f"; {budget['denied']} retry(ies) DENIED — sweep "
                    "budget exhausted"
                )
            lines.append(line)
        for job_id in self.quarantined:
            outcome = self.outcomes[job_id]
            lines.append(
                f"  quarantined {job_id}: {outcome.error} "
                f"(after {outcome.attempts} attempt(s))"
            )
        for job_id in self.skipped:
            outcome = self.outcomes[job_id]
            lines.append(
                f"  skipped {job_id}: depends on {outcome.blocked_by}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepReport(succeeded={len(self.succeeded)}, "
            f"quarantined={len(self.quarantined)}, "
            f"skipped={len(self.skipped)})"
        )
